//! A reusable check session: one compiled program plus its cached
//! dataflow analyses, shareable across many driver runs.
//!
//! Every entry point used to redo the same setup per invocation: parse,
//! lower, validate, `Analyses::build`, then check. A [`Session`] does
//! that setup once and keeps the [`Analyses`] — including the lazily
//! memoized `By` relation — alive across calls, so a long-running caller
//! (the `pathslice serve` daemon, a REPL, a bench harness) pays the
//! fixpoint cost once per *program*, not once per *request*. The batch
//! CLI path (`pathslice check`) runs on the same object, so there is
//! exactly one code path from source text to verdicts.
//!
//! Sessions are content-addressed: [`Session::key`] is a 64-bit FNV-1a
//! hash of the *resolved* program (the parsed AST pretty-printed back to
//! canonical source), so two requests that differ only in whitespace or
//! comments share one cache entry.

use crate::checker::{CheckOutcome, CheckerConfig, ClusterReport};
use crate::driver::{run_clusters_with, DriverConfig, DriverReport};
use cfa::Program;
use dataflow::Analyses;
use std::fmt::Write as _;

/// A compiled program with long-lived analyses.
///
/// The struct is self-referential (`analyses` borrows `program`); the
/// program lives in a `Box`, so its address is stable for the session's
/// lifetime, and the field order guarantees the analyses drop first.
#[derive(Debug)]
pub struct Session {
    /// Declared before `program`: dropped first, so the borrow it holds
    /// never dangles.
    analyses: Analyses<'static>,
    program: Box<Program>,
    source: String,
    key: u64,
}

impl Session {
    /// Compiles IMP source into a session. `origin` labels front-end
    /// errors (a file path, or `"<request>"` for wire traffic) exactly
    /// like the CLI does, so batch and served checks report identically.
    ///
    /// # Errors
    ///
    /// Returns the rendered front-end error (with source snippet and
    /// caret) on parse, lowering, or validation failure.
    pub fn compile(src: &str, origin: &str) -> Result<Session, String> {
        let ast = imp::parse(src).map_err(|e| format!("{origin}: {}", e.render(src)))?;
        let key = fnv64(imp::pretty::program_to_string(&ast).as_bytes());
        let program = cfa::lower(&ast).map_err(|e| format!("{origin}: {e}"))?;
        cfa::validate(&program).map_err(|e| format!("{origin}: {e}"))?;
        Ok(Session::new(program, src, key))
    }

    /// The content key `compile(src, ..)` would produce, without paying
    /// for lowering or analysis — what a cache consults before deciding
    /// whether to build a session at all.
    ///
    /// # Errors
    ///
    /// The rendered front-end parse error, as in [`Session::compile`].
    pub fn content_key(src: &str, origin: &str) -> Result<u64, String> {
        let ast = imp::parse(src).map_err(|e| format!("{origin}: {}", e.render(src)))?;
        Ok(fnv64(imp::pretty::program_to_string(&ast).as_bytes()))
    }

    /// Wraps an already-lowered program (keyed by its pretty-printed
    /// source text) — for callers that generate programs directly.
    pub fn from_program(program: Program, source: &str) -> Session {
        let key = fnv64(source.as_bytes());
        Session::new(program, source, key)
    }

    fn new(program: Program, source: &str, key: u64) -> Session {
        let program = Box::new(program);
        // SAFETY: `pref` points into the boxed program, whose heap
        // address is stable however the `Session` itself moves, and the
        // `analyses` field is declared (hence dropped) before `program`.
        // The `'static` borrow never escapes this struct: every accessor
        // reborrows it at `&self`'s lifetime.
        let pref: &'static Program = unsafe { &*(program.as_ref() as *const Program) };
        let analyses = Analyses::build(pref);
        Session {
            analyses,
            program,
            source: source.to_owned(),
            key,
        }
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The cached analyses (covariance shortens the internal `'static`
    /// borrow to `&self`'s lifetime).
    pub fn analyses<'s>(&'s self) -> &'s Analyses<'s> {
        &self.analyses
    }

    /// The source text the session was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The content key: FNV-1a over the resolved program.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Runs the fault-tolerant driver over this session's program,
    /// reusing the cached analyses (and whatever `By` memo entries
    /// earlier checks populated).
    pub fn check(&self, config: CheckerConfig, driver: &DriverConfig) -> DriverReport {
        run_clusters_with(&self.analyses, config, driver)
    }
}

/// 64-bit FNV-1a — the workspace's standalone content hash (no std
/// `Hasher` so the value is stable across Rust releases and platforms).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Renders cluster verdicts exactly as `pathslice check` prints them and
/// computes the process exit code (0 safe, 1 bug, 2 timeout/internal,
/// 3 certificate mismatch). One function so the CLI and the server are
/// byte-identical by construction.
pub fn render_verdicts(program: &Program, reports: &[ClusterReport]) -> (String, i32) {
    let mut out = String::new();
    let mut worst = 0;
    for r in reports {
        let verdict = match &r.report.outcome {
            CheckOutcome::Safe => "SAFE".to_owned(),
            CheckOutcome::Bug { .. } => {
                worst = worst.max(1);
                "BUG".to_owned()
            }
            CheckOutcome::Timeout(reason) => {
                worst = worst.max(2);
                format!("TIMEOUT({reason:?})")
            }
            CheckOutcome::InternalError { phase, .. } => {
                worst = worst.max(2);
                format!("INTERNAL({phase})")
            }
            CheckOutcome::CertificateMismatch { claimed, .. } => {
                worst = worst.max(3);
                format!("MISMATCH({claimed})")
            }
        };
        let _ = writeln!(
            out,
            "{:<24} {:>4} site(s)  {:<18} {:>3} refinement(s)  {:?}",
            r.func_name, r.n_sites, verdict, r.report.refinements, r.report.wall
        );
        if let CheckOutcome::Bug { slice, .. } = &r.report.outcome {
            for &e in slice {
                let edge = program.edge(e);
                let _ = writeln!(
                    out,
                    "    {:<16} {}",
                    program.cfa(e.func).name(),
                    program.fmt_op(&edge.op)
                );
            }
        }
        if let CheckOutcome::CertificateMismatch { reason, .. } = &r.report.outcome {
            let _ = writeln!(out, "    certificate rejected: {reason}");
        }
    }
    (out, worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_clusters;

    const SRC: &str = r#"
        global a, x;
        fn f() { if (a > 0) { error(); } }
        fn g() { x = 1; if (x == 2) { error(); } }
        fn main() { f(); g(); }
    "#;

    #[test]
    fn session_check_matches_run_clusters() {
        let session = Session::compile(SRC, "<test>").unwrap();
        let program = cfa::lower(&imp::parse(SRC).unwrap()).unwrap();
        let plain = run_clusters(
            &program,
            CheckerConfig::default(),
            &DriverConfig::sequential(),
        );
        for _ in 0..2 {
            // Twice: the second run hits the warmed By memo table.
            let driven = session.check(CheckerConfig::default(), &DriverConfig::sequential());
            let (a, code_a) = render_verdicts(
                session.program(),
                &plain
                    .clusters
                    .iter()
                    .map(|c| c.cluster.clone())
                    .collect::<Vec<_>>(),
            );
            let (b, code_b) = render_verdicts(
                session.program(),
                &driven
                    .clusters
                    .iter()
                    .map(|c| c.cluster.clone())
                    .collect::<Vec<_>>(),
            );
            assert_eq!(code_a, code_b);
            let strip = |s: &str| -> Vec<String> {
                s.lines()
                    .map(|l| {
                        l.rsplit_once("  ")
                            .map_or(l.to_owned(), |(v, _)| v.to_owned())
                    })
                    .collect()
            };
            assert_eq!(strip(&a), strip(&b));
        }
    }

    #[test]
    fn content_key_ignores_formatting() {
        let a = Session::compile("global x;\nfn main() { x = 1; }", "<a>").unwrap();
        let b = Session::compile("global x;   \n\n fn main() {\n x = 1;\n }", "<b>").unwrap();
        let c = Session::compile("global x;\nfn main() { x = 2; }", "<c>").unwrap();
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn compile_errors_carry_the_origin() {
        let err = Session::compile("fn main() {", "somefile.imp").unwrap_err();
        assert!(err.starts_with("somefile.imp:"), "{err}");
    }

    #[test]
    fn deadline_in_the_past_times_out_every_cluster() {
        use crate::checker::TimeoutReason;
        let session = Session::compile(SRC, "<test>").unwrap();
        let driver = DriverConfig::sequential()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let r = session.check(CheckerConfig::default(), &driver);
        for c in &r.clusters {
            assert!(
                matches!(
                    c.cluster.report.outcome,
                    CheckOutcome::Timeout(TimeoutReason::WallClock)
                ),
                "{:?}",
                c.cluster.report.outcome
            );
        }
    }
}
