//! Predicate pools, tri-state valuations, and the abstract post.

use cfa::{CBool, Op, Program};
use dataflow::Analyses;
use lia::{Formula, SatResult, Solver};
use semantics::wp::{cbool_to_formula, wp_bool};
use std::collections::HashMap;

/// A tri-state predicate valuation: one entry per pool predicate.
/// `1` = known true, `-1` = known false, `0` = unknown.
pub type Valuation = Vec<i8>;

/// The set of abstraction predicates, with their [`lia`] encodings and
/// an entailment cache.
///
/// Only pointer-free linear predicates are admitted (others cannot be
/// reasoned about by the solver and would stay permanently unknown).
#[derive(Debug)]
pub struct PredicatePool {
    preds: Vec<CBool>,
    formulas: Vec<Formula>,
    /// Per predicate: `Some(f)` if it mentions a local of `f` (tracked
    /// only inside `f` when scoping is enabled); `None` for predicates
    /// over globals, tracked everywhere.
    scopes: Vec<Option<cfa::FuncId>>,
    solver: Solver,
    /// Cache of entailment queries: (state-valuation, extra-formula key,
    /// query index, polarity) → holds?
    entail_cache: HashMap<(Valuation, u64, usize, bool), bool>,
    /// Cache of assume-consistency checks.
    consistent_cache: HashMap<(Valuation, u64), bool>,
}

/// A conservative hash key for formulas (used only for caching; collisions
/// only cost duplicated solver work — results are keyed by full
/// valuations too, and formulas come from a small per-program set of
/// edges, so the 64-bit FNV of the debug rendering is ample).
fn formula_key(f: &Formula) -> u64 {
    let s = format!("{f}");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl PredicatePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        PredicatePool {
            preds: Vec::new(),
            formulas: Vec::new(),
            scopes: Vec::new(),
            solver: Solver::new(),
            entail_cache: HashMap::new(),
            consistent_cache: HashMap::new(),
        }
    }

    /// The scope of predicate `i` (see [`PredicatePool::add_scoped`]).
    pub fn scope(&self, i: usize) -> Option<cfa::FuncId> {
        self.scopes[i]
    }

    /// Adds a predicate with its scope computed from `program`'s
    /// variable table: predicates reading any local of `f` are scoped to
    /// `f`; all-global predicates are unscoped. Returns whether the pool
    /// grew.
    pub fn add_scoped(&mut self, program: &Program, p: CBool) -> bool {
        let mut reads = Vec::new();
        p.collect_reads(&mut reads);
        let mut scope = None;
        for lv in &reads {
            if let cfa::VarKind::Local(f) = program.vars().kind(lv.base()) {
                scope = Some(f);
            }
        }
        self.add_inner(p, scope)
    }

    /// The predicates currently in the pool.
    pub fn predicates(&self) -> &[CBool] {
        &self.preds
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Adds a predicate if it is new and expressible (unscoped — tracked
    /// everywhere); returns whether the pool grew.
    pub fn add(&mut self, p: CBool) -> bool {
        self.add_inner(p, None)
    }

    fn add_inner(&mut self, p: CBool, scope: Option<cfa::FuncId>) -> bool {
        if matches!(p, CBool::True | CBool::False) {
            return false;
        }
        let Some(f) = cbool_to_formula(&p) else {
            return false;
        };
        if self.preds.contains(&p) {
            return false;
        }
        self.preds.push(p);
        self.formulas.push(f);
        self.scopes.push(scope);
        // Valuations change shape: old cache entries are keyed by
        // shorter valuations and can never be hit again, but clear them
        // to bound memory.
        self.entail_cache.clear();
        self.consistent_cache.clear();
        true
    }

    /// The all-unknown valuation.
    pub fn top(&self) -> Valuation {
        vec![0; self.preds.len()]
    }

    /// Forces predicates scoped to functions other than `f` to unknown —
    /// the lazy-abstraction-style locality of BLAST [17 in the paper's
    /// bibliography]: facts about one function's locals are not carried
    /// through other functions' exploration, shrinking the abstract
    /// state space. Sound (unknown over-approximates).
    pub fn mask_for(&self, vals: &mut Valuation, f: cfa::FuncId) {
        for (i, s) in self.scopes.iter().enumerate() {
            if let Some(g) = s {
                if *g != f {
                    vals[i] = 0;
                }
            }
        }
    }

    /// The conjunction of the known predicate values.
    fn state_formula(&self, vals: &Valuation) -> Formula {
        let mut parts = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            match v {
                1 => parts.push(self.formulas[i].clone()),
                -1 => parts.push(Formula::not(self.formulas[i].clone())),
                _ => {}
            }
        }
        Formula::And(parts)
    }

    /// Does `state ∧ extra ⟹ target` hold (positive) or
    /// `state ∧ extra ⟹ ¬target` (negative)? Unsat-based, cached.
    fn entails(
        &mut self,
        vals: &Valuation,
        extra: &Formula,
        target_idx: usize,
        positive: bool,
    ) -> bool {
        let key = (vals.clone(), formula_key(extra), target_idx, positive);
        if let Some(&r) = self.entail_cache.get(&key) {
            return r;
        }
        let target = if positive {
            Formula::not(self.formulas[target_idx].clone())
        } else {
            self.formulas[target_idx].clone()
        };
        let q = Formula::and(
            Formula::and(self.state_formula(vals), extra.clone()),
            target,
        );
        let r = self.solver.check(&q).is_unsat();
        self.entail_cache.insert(key, r);
        r
    }

    /// Abstract post across an `assume(p)` edge: `None` if the branch is
    /// inconsistent with the known predicates (pruned), otherwise the
    /// strengthened valuation.
    pub fn post_assume(&mut self, vals: &Valuation, p: &CBool) -> Option<Valuation> {
        let Some(pf) = cbool_to_formula(p) else {
            // Unexpressible condition: no pruning, no strengthening.
            return Some(vals.clone());
        };
        let ckey = (vals.clone(), formula_key(&pf));
        let consistent = match self.consistent_cache.get(&ckey) {
            Some(&c) => c,
            None => {
                let q = Formula::and(self.state_formula(vals), pf.clone());
                let c = match self.solver.check(&q) {
                    SatResult::Unsat => false,
                    SatResult::Sat(_) | SatResult::Unknown => true,
                };
                self.consistent_cache.insert(ckey, c);
                c
            }
        };
        if !consistent {
            return None;
        }
        let mut out = vals.clone();
        // (indexing, not iterating: `entails` borrows `self` mutably)
        #[allow(clippy::needless_range_loop)]
        for i in 0..out.len() {
            if out[i] != 0 {
                continue;
            }
            if self.entails(vals, &pf, i, true) {
                out[i] = 1;
            } else if self.entails(vals, &pf, i, false) {
                out[i] = -1;
            }
        }
        Some(out)
    }

    /// Abstract post across an assignment/havoc/call/return operation.
    pub fn post_op(&mut self, analyses: &Analyses<'_>, vals: &Valuation, op: &Op) -> Valuation {
        match op {
            Op::Assume(_) => unreachable!("assumes go through post_assume"),
            Op::Call(_) | Op::Return => return vals.clone(),
            _ => {}
        }
        // Which cells may this op write?
        let written = match op.write() {
            Some(lv) => analyses.alias().may_write_cells(lv),
            None => return vals.clone(),
        };
        let mut out = vec![0i8; self.preds.len()];
        for i in 0..self.preds.len() {
            // Fast path: predicate reads no written cell → unchanged.
            let mut reads = Vec::new();
            self.preds[i].collect_reads(&mut reads);
            let read_cells = analyses.cells_of(reads.iter());
            if !read_cells.intersects(&written) {
                out[i] = vals[i];
                continue;
            }
            match wp_bool(&self.preds[i], op) {
                None => out[i] = 0,
                Some(wpp) => {
                    let Some(wpf) = cbool_to_formula(&wpp) else {
                        out[i] = 0;
                        continue;
                    };
                    // state ⟹ wp(p) → p' true; state ⟹ ¬wp(p) → p' false.
                    let q_true = Formula::and(self.state_formula(vals), Formula::not(wpf.clone()));
                    let q_false = Formula::and(self.state_formula(vals), wpf);
                    if self.solver.check(&q_true).is_unsat() {
                        out[i] = 1;
                    } else if self.solver.check(&q_false).is_unsat() {
                        out[i] = -1;
                    } else {
                        out[i] = 0;
                    }
                }
            }
        }
        out
    }
}

impl Default for PredicatePool {
    fn default() -> Self {
        Self::new()
    }
}

/// Collects the atomic comparisons of a condition as candidate
/// predicates.
pub fn atoms_of(p: &CBool, out: &mut Vec<CBool>) {
    match p {
        CBool::True | CBool::False => {}
        CBool::Cmp(..) => out.push(p.clone()),
        CBool::Not(i) => atoms_of(i, out),
        CBool::And(a, b) | CBool::Or(a, b) => {
            atoms_of(a, out);
            atoms_of(b, out);
        }
    }
}

/// Builds an abstraction-ready program handle: not needed yet, kept for
/// interface parity.
pub fn usable_predicate(program: &Program, p: &CBool) -> bool {
    let _ = program;
    cbool_to_formula(p).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfa::{CExpr, CLval};
    use imp::ast::CmpOp;

    fn prog(src: &str) -> Program {
        cfa::lower(&imp::parse(src).unwrap()).unwrap()
    }

    fn cmp(op: CmpOp, v: cfa::VarId, k: i64) -> CBool {
        CBool::Cmp(op, CExpr::Lval(CLval::Var(v)), CExpr::Int(k))
    }

    #[test]
    fn assume_prunes_contradictions() {
        let p = prog("global x; fn main() { assume(x > 0); }");
        let x = p.vars().lookup("x").unwrap();
        let mut pool = PredicatePool::new();
        assert!(pool.add(cmp(CmpOp::Gt, x, 0)));
        let mut vals = pool.top();
        vals[0] = -1; // x > 0 known false
        let r = pool.post_assume(&vals, &cmp(CmpOp::Gt, x, 0));
        assert!(r.is_none(), "assume(x>0) under ¬(x>0) is pruned");
        // And consistent assumes strengthen unknowns.
        let r2 = pool
            .post_assume(&pool.top(), &cmp(CmpOp::Gt, x, 5))
            .unwrap();
        assert_eq!(r2[0], 1, "x > 5 implies x > 0");
    }

    #[test]
    fn assignment_post_updates_predicate() {
        let p = prog("global x; fn main() { x = 1; }");
        let x = p.vars().lookup("x").unwrap();
        let an = Analyses::build(&p);
        let mut pool = PredicatePool::new();
        pool.add(cmp(CmpOp::Eq, x, 1));
        pool.add(cmp(CmpOp::Eq, x, 0));
        let op = &p.cfa(p.main()).edges()[0].op; // x := 1
        let out = pool.post_op(&an, &pool.top(), op);
        assert_eq!(out, vec![1, -1], "x := 1 makes x==1 true and x==0 false");
    }

    #[test]
    fn unrelated_assignment_preserves_values() {
        let p = prog("global x, y; fn main() { y = 3; }");
        let x = p.vars().lookup("x").unwrap();
        let an = Analyses::build(&p);
        let mut pool = PredicatePool::new();
        pool.add(cmp(CmpOp::Gt, x, 0));
        let mut vals = pool.top();
        vals[0] = 1;
        let op = &p.cfa(p.main()).edges()[0].op; // y := 3
        let out = pool.post_op(&an, &vals, op);
        assert_eq!(out, vec![1], "y := 3 does not disturb x > 0");
    }

    #[test]
    fn havoc_resets_dependent_predicates() {
        let p = prog("global x; fn main() { x = nondet(); }");
        let x = p.vars().lookup("x").unwrap();
        let an = Analyses::build(&p);
        let mut pool = PredicatePool::new();
        pool.add(cmp(CmpOp::Gt, x, 0));
        let mut vals = pool.top();
        vals[0] = 1;
        let op = &p.cfa(p.main()).edges()[0].op;
        let out = pool.post_op(&an, &vals, op);
        assert_eq!(out, vec![0], "x := nondet() forgets x > 0");
    }

    #[test]
    fn increment_shifts_known_facts() {
        let p = prog("global x; fn main() { x = x + 1; }");
        let x = p.vars().lookup("x").unwrap();
        let an = Analyses::build(&p);
        let mut pool = PredicatePool::new();
        pool.add(cmp(CmpOp::Gt, x, 0)); // x > 0
        pool.add(cmp(CmpOp::Ge, x, 0)); // x >= 0
        let mut vals = pool.top();
        vals[1] = 1; // x >= 0
        let op = &p.cfa(p.main()).edges()[0].op; // x := x + 1
        let out = pool.post_op(&an, &vals, op);
        assert_eq!(out[0], 1, "x >= 0 implies x + 1 > 0");
        assert_eq!(out[1], 1, "x >= 0 implies x + 1 >= 0");
    }

    #[test]
    fn pool_rejects_duplicates_and_unexpressible() {
        let p = prog("global x, y; fn main() { assume(x * y > 0); }");
        let x = p.vars().lookup("x").unwrap();
        let mut pool = PredicatePool::new();
        assert!(pool.add(cmp(CmpOp::Gt, x, 0)));
        assert!(!pool.add(cmp(CmpOp::Gt, x, 0)), "duplicate");
        let Op::Assume(nl) = &p.cfa(p.main()).edges()[0].op else {
            panic!()
        };
        assert!(!pool.add(nl.clone()), "non-linear predicate rejected");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn scoped_predicates_mask_outside_their_function() {
        let p = prog("global g; fn f() { local t; t = g; } fn main() { f(); }");
        let f = p.func_id("f").unwrap();
        let main = p.main();
        let g = p.vars().lookup("g").unwrap();
        let t = p.vars().lookup("f::t").unwrap();
        let mut pool = PredicatePool::new();
        // g > 0 is global-scoped; t > 0 mentions f's local.
        assert!(pool.add_scoped(&p, cmp(CmpOp::Gt, g, 0)));
        assert!(pool.add_scoped(&p, cmp(CmpOp::Gt, t, 0)));
        assert_eq!(pool.scope(0), None);
        assert_eq!(pool.scope(1), Some(f));
        let mut vals = vec![1i8, 1];
        pool.mask_for(&mut vals, main);
        assert_eq!(vals, vec![1, 0], "t's fact forgotten outside f");
        let mut vals2 = vec![1i8, 1];
        pool.mask_for(&mut vals2, f);
        assert_eq!(vals2, vec![1, 1], "kept inside f");
    }

    #[test]
    fn atoms_of_decomposes_conditions() {
        let p = prog("global x, y; fn main() { assume(x > 0 && !(y == 2)); }");
        let Op::Assume(c) = &p.cfa(p.main()).edges()[0].op else {
            panic!()
        };
        let mut atoms = Vec::new();
        atoms_of(c, &mut atoms);
        assert_eq!(atoms.len(), 2);
    }

    mod soundness {
        use super::*;
        use proptest::prelude::*;
        use semantics::State;

        const MENU: &str = "global x, y; fn main() { \
            x = x + 1; x = 0; x = y; y = x * 2; y = y - 3; x = nondet(); \
            x = x + y; y = 7; }";

        fn op_menu(p: &Program) -> Vec<Op> {
            p.cfa(p.main())
                .edges()
                .iter()
                .map(|e| e.op.clone())
                .collect()
        }

        fn pred_menu(p: &Program) -> Vec<CBool> {
            let x = p.vars().lookup("x").unwrap();
            let y = p.vars().lookup("y").unwrap();
            let xv = CExpr::Lval(CLval::Var(x));
            let yv = CExpr::Lval(CLval::Var(y));
            vec![
                CBool::Cmp(CmpOp::Gt, xv.clone(), CExpr::Int(0)),
                CBool::Cmp(CmpOp::Eq, xv.clone(), CExpr::Int(0)),
                CBool::Cmp(CmpOp::Le, yv.clone(), CExpr::Int(3)),
                CBool::Cmp(CmpOp::Eq, xv.clone(), yv.clone()),
                CBool::Cmp(
                    CmpOp::Lt,
                    xv,
                    CExpr::Bin(imp::ast::BinOp::Add, Box::new(yv), Box::new(CExpr::Int(2))),
                ),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Concrete-abstract simulation: start from the *exact*
            /// abstraction of a concrete state; after any operation, the
            /// abstract post's known values must agree with the concrete
            /// successor (over-approximation soundness of post_op).
            #[test]
            fn post_op_simulates_concrete_steps(
                xv in -4i64..=4,
                yv in -4i64..=4,
                op_idx in 0usize..8,
                havoc in -4i64..=4,
            ) {
                let p = prog(MENU);
                let an = Analyses::build(&p);
                let ops = op_menu(&p);
                let Some(op) = ops.get(op_idx) else { return Ok(()) };
                if matches!(op, Op::Return) { return Ok(()); }
                let preds = pred_menu(&p);
                let mut pool = PredicatePool::new();
                for q in &preds {
                    pool.add(q.clone());
                }
                let mut s = State::zeroed(&p);
                s.set(p.vars().lookup("x").unwrap(), xv);
                s.set(p.vars().lookup("y").unwrap(), yv);
                let vals: Valuation = preds
                    .iter()
                    .map(|q| if s.eval_bool(q).unwrap() { 1i8 } else { -1 })
                    .collect();
                let mut s2 = s.clone();
                s2.step(op, || havoc).unwrap();
                let out = pool.post_op(&an, &vals, op);
                for (i, q) in preds.iter().enumerate() {
                    let truth = s2.eval_bool(q).unwrap();
                    match out[i] {
                        1 => prop_assert!(truth, "pred {} wrongly true after {:?}", i, op),
                        -1 => prop_assert!(!truth, "pred {} wrongly false after {:?}", i, op),
                        _ => {}
                    }
                }
            }

            /// post_assume never prunes a concretely-passing branch.
            #[test]
            fn post_assume_simulates_concrete_branches(
                xv in -4i64..=4,
                yv in -4i64..=4,
                cond_idx in 0usize..5,
            ) {
                let p = prog(MENU);
                let preds = pred_menu(&p);
                let cond = preds[cond_idx].clone();
                let mut pool = PredicatePool::new();
                for q in &preds {
                    pool.add(q.clone());
                }
                let mut s = State::zeroed(&p);
                s.set(p.vars().lookup("x").unwrap(), xv);
                s.set(p.vars().lookup("y").unwrap(), yv);
                if !s.eval_bool(&cond).unwrap() {
                    return Ok(());
                }
                let vals: Valuation = preds
                    .iter()
                    .map(|q| if s.eval_bool(q).unwrap() { 1i8 } else { -1 })
                    .collect();
                let out = pool.post_assume(&vals, &cond);
                prop_assert!(out.is_some(), "pruned a concretely-feasible branch");
            }
        }
    }
}
