//! `pathslicing` — the facade crate of the *Path Slicing* reproduction
//! (Jhala & Majumdar, PLDI 2005).
//!
//! Re-exports the whole stack under one roof and provides [`compile`],
//! the one-call entry from IMP source text to an analyzable CFA program.
//!
//! | layer | crate | role |
//! |-------|-------|------|
//! | frontend | [`imp`] | lexer, parser, resolver for the IMP language |
//! | IR | [`cfa`] | control flow automata, program paths, `Call.i` |
//! | analyses | [`dataflow`] | `By`, `WrBt`, `Mods`, alias analysis |
//! | solver | [`lia`] | linear integer arithmetic decision procedure |
//! | runtime | [`rt`] | budgets, cancellation, panic isolation, fault injection |
//! | semantics | [`semantics`] | interpreter, WP, SSA trace encoding |
//! | **contribution** | [`slicer`] | the `PathSlice` algorithm |
//! | baselines | [`baselines`] | static (flow-insensitive + PDG) and dynamic slicing |
//! | application | [`blastlite`] | CEGAR model checker with slicing |
//! | evaluation | [`workloads`] | §5 benchmark program generators (+ lock discipline) |
//! | future work | `bdd` (via [`dataflow::bddreach`]) | symbolic `By` computation (§5) |
//!
//! # Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use pathslicing::prelude::*;
//!
//! let program = pathslicing::compile(
//!     "global a; fn main() { local w; w = a * 2; if (a > 0) { error(); } }",
//! )?;
//! let analyses = Analyses::build(&program);
//!
//! // Check reachability of the error location with CEGAR + slicing.
//! let reports = check_program(&analyses, CheckerConfig::default());
//! assert!(reports[0].report.outcome.is_bug());
//! # Ok(())
//! # }
//! ```

pub use baselines;
pub use blastlite;
pub use certify;
pub use cfa;
pub use dataflow;
pub use imp;
pub use incr;
pub use lia;
pub use obs;
pub use rt;
pub use semantics;
pub use slicer;
pub use workloads;

/// One-stop imports for typical use.
pub mod prelude {
    pub use baselines::{DynamicSlicer, PdgSlicer, StaticSlicer};
    pub use blastlite::{
        check_program, run_clusters, CheckOutcome, CheckerConfig, ClusterValidator, DriverConfig,
        Reducer, RefutationRound, RetryPolicy, SearchOrder,
    };
    pub use certify::{certify_cluster, certify_report, validate, Certificate, Validation};
    pub use cfa::{Path, Program};
    pub use dataflow::Analyses;
    pub use semantics::{
        concretize, replay, replay_with_fallback, ConcretizeError, EdgeOracle, ExecOutcome, Interp,
        Oracle, ReplayOracle, RngOracle, State, Witness,
    };
    pub use slicer::{render_slice, PathSlicer, SliceOptions, SliceResult};
}

/// Compiles IMP source text into a validated CFA [`cfa::Program`].
///
/// # Errors
///
/// Returns a boxed error for lexical, syntactic, resolution, lowering, or
/// validation failures (each with its own display).
pub fn compile(src: &str) -> Result<cfa::Program, Box<dyn std::error::Error>> {
    let ast = imp::parse(src)?;
    let program = cfa::lower(&ast)?;
    cfa::validate(&program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_rejects_bad_source() {
        assert!(super::compile("fn main() { x = 1; }").is_err());
        assert!(super::compile("fn main() {").is_err());
    }

    #[test]
    fn compile_accepts_paper_examples() {
        let ex2 = r#"
            global a, x;
            fn f() { }
            fn main() {
                local i;
                for (i = 1; i <= 1000; i = i + 1) { f(); }
                if (a >= 0) { if (x == 0) { error(); } }
            }
        "#;
        let p = super::compile(ex2).unwrap();
        assert_eq!(p.cfas().len(), 2);
    }
}
