//! Human-readable rendering: operation formatting and Graphviz export.

use crate::ir::{CBool, CExpr, CLval, Cfa, Op, Program};
use std::fmt::Write as _;

impl Program {
    /// Renders an lvalue with source-level variable names.
    pub fn fmt_lval(&self, lv: CLval) -> String {
        match lv {
            CLval::Var(v) => self.vars().name(v).to_owned(),
            CLval::Deref(v) => format!("*{}", self.vars().name(v)),
            CLval::Arr(v) => format!("{}[·]", self.vars().name(v)),
        }
    }

    /// Renders an expression with source-level variable names.
    pub fn fmt_expr(&self, e: &CExpr) -> String {
        match e {
            CExpr::Int(n) => n.to_string(),
            CExpr::Lval(lv) => self.fmt_lval(*lv),
            CExpr::ArrLoad(a, idx) => {
                format!("{}[{}]", self.vars().name(*a), self.fmt_expr(idx))
            }
            CExpr::AddrOf(v) => format!("&{}", self.vars().name(*v)),
            CExpr::Neg(i) => format!("-({})", self.fmt_expr(i)),
            CExpr::Bin(op, a, b) => {
                format!("({} {} {})", self.fmt_expr(a), op, self.fmt_expr(b))
            }
        }
    }

    /// Renders a boolean predicate with source-level variable names.
    pub fn fmt_bool(&self, b: &CBool) -> String {
        match b {
            CBool::True => "true".to_owned(),
            CBool::False => "false".to_owned(),
            CBool::Cmp(op, a, b) => format!("{} {} {}", self.fmt_expr(a), op, self.fmt_expr(b)),
            CBool::Not(i) => format!("!({})", self.fmt_bool(i)),
            CBool::And(a, b) => format!("({} && {})", self.fmt_bool(a), self.fmt_bool(b)),
            CBool::Or(a, b) => format!("({} || {})", self.fmt_bool(a), self.fmt_bool(b)),
        }
    }

    /// Renders an operation with source-level variable names.
    pub fn fmt_op(&self, op: &Op) -> String {
        match op {
            Op::Assign(lv, e) => format!("{} := {}", self.fmt_lval(*lv), self.fmt_expr(e)),
            Op::ArrStore(a, idx, val) => format!(
                "{}[{}] := {}",
                self.vars().name(*a),
                self.fmt_expr(idx),
                self.fmt_expr(val)
            ),
            Op::Havoc(lv) => format!("{} := nondet()", self.fmt_lval(*lv)),
            Op::Assume(p) => format!("assume({})", self.fmt_bool(p)),
            Op::Call(f) => format!("call {}()", self.cfa(*f).name()),
            Op::Return => "return".to_owned(),
        }
    }

    /// Emits one CFA as a Graphviz `digraph`.
    pub fn to_dot(&self, cfa: &Cfa) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", cfa.name());
        let _ = writeln!(out, "  rankdir=TB; node [shape=circle, fontsize=10];");
        let _ = writeln!(
            out,
            "  pc{} [shape=doublecircle, label=\"entry\"];",
            cfa.entry().idx
        );
        let _ = writeln!(
            out,
            "  pc{} [shape=doublecircle, label=\"exit\"];",
            cfa.exit().idx
        );
        for &err in cfa.error_locs() {
            let _ = writeln!(
                out,
                "  pc{} [shape=octagon, color=red, label=\"ERR\"];",
                err.idx
            );
        }
        for e in cfa.edges() {
            let label = self.fmt_op(&e.op).replace('"', "\\\"");
            let _ = writeln!(
                out,
                "  pc{} -> pc{} [label=\"{}\"];",
                e.src.idx, e.dst.idx, label
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::lower;

    #[test]
    fn dot_output_contains_edges_and_error() {
        let p = lower(
            &imp::parse("fn main() { local a; if (a > 0) { error(); } a = a * 2 + 1; }").unwrap(),
        )
        .unwrap();
        let dot = p.to_dot(p.cfa(p.main()));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("ERR"));
        assert!(dot.contains("assume"));
        assert!(dot.contains(":="));
    }

    #[test]
    fn fmt_op_is_readable() {
        let p = lower(&imp::parse("global x; fn main() { local p; p = &x; *p = 5; }").unwrap())
            .unwrap();
        let m = p.cfa(p.main());
        let rendered: Vec<String> = m.edges().iter().map(|e| p.fmt_op(&e.op)).collect();
        assert!(
            rendered.iter().any(|s| s == "main::p := &x"),
            "{rendered:?}"
        );
        assert!(
            rendered.iter().any(|s| s == "*main::p := 5"),
            "{rendered:?}"
        );
    }
}
