//! The CFA intermediate representation.
//!
//! Mirrors the paper's §3.1/§4 definitions: a program is a set of CFAs
//! `C_f = (PC_f, pc_0, pc_out, E_f, V_f)`; edges are labeled with
//! assignment, assume, call, or return operations. We add a `havoc`
//! operation (`lv := nondet()`) for external input and distinguished
//! *error locations* (the reachability targets produced by `error()` /
//! failed `assert`).

use imp::ast::{BinOp, CmpOp};
use std::collections::HashMap;
use std::fmt;

/// Identifies a variable in a [`Program`]'s interned variable table.
///
/// Local variables of different functions have disjoint ids (the paper's
/// assumption (3) in §4), achieved by interning locals under qualified
/// names (`f::x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a function (and its CFA) in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A control location (program counter) inside one function's CFA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc {
    /// The function whose CFA this location belongs to.
    pub func: FuncId,
    /// Dense index within the CFA.
    pub idx: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}:pc{}", self.func.0, self.idx)
    }
}

/// Whether a variable is a global, a (qualified) local, or an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A program global (including generated `f::argN` / `f::ret`
    /// transfer variables).
    Global,
    /// A local (parameter or `local` declaration) of the given function.
    Local(FuncId),
    /// A global array with the given length; its [`VarId`] denotes the
    /// summary cell.
    Array(u32),
}

/// An lvalue: a variable, a single pointer dereference (§3.4), or the
/// *summary cell* of an array.
///
/// Arrays extend the paper's memory model the way BLAST handled them:
/// one abstract cell per array, updated **weakly** (an element store may
/// or may not change the value an element load sees), so
/// `MustAlias(a[·], a[·])` is false even for the same array while
/// `MayAlias` is true. Concrete indexing only exists at the
/// operation level ([`Op::ArrStore`], [`CExpr::ArrLoad`]) where the
/// interpreter needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CLval {
    /// The memory cell of variable `x`.
    Var(VarId),
    /// The cell pointed to by the current value of `p` (`*p`).
    Deref(VarId),
    /// The summary cell of array `a` (all of `a[0..len]`).
    Arr(VarId),
}

impl CLval {
    /// The underlying variable.
    pub fn base(self) -> VarId {
        match self {
            CLval::Var(v) | CLval::Deref(v) | CLval::Arr(v) => v,
        }
    }

    /// Whether this lvalue is a dereference.
    pub fn is_deref(self) -> bool {
        matches!(self, CLval::Deref(_))
    }
}

/// Integer expressions over interned variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CExpr {
    /// Integer constant.
    Int(i64),
    /// Read of an lvalue.
    Lval(CLval),
    /// An array element read `a[e]`.
    ArrLoad(VarId, Box<CExpr>),
    /// `&x`.
    AddrOf(VarId),
    /// Unary minus.
    Neg(Box<CExpr>),
    /// Binary arithmetic.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    /// Convenience constructor for a variable read.
    pub fn var(v: VarId) -> CExpr {
        CExpr::Lval(CLval::Var(v))
    }

    /// Collects the lvalues read by this expression (the paper's `Lvs.e`,
    /// §3.3), including the pointer variable itself for each `*p`.
    pub fn collect_reads(&self, out: &mut Vec<CLval>) {
        match self {
            CExpr::Int(_) | CExpr::AddrOf(_) => {}
            CExpr::Lval(lv) => {
                if let CLval::Deref(p) = lv {
                    out.push(CLval::Var(*p));
                }
                out.push(*lv);
            }
            CExpr::ArrLoad(a, idx) => {
                out.push(CLval::Arr(*a));
                idx.collect_reads(out);
            }
            CExpr::Neg(e) => e.collect_reads(out),
            CExpr::Bin(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
        }
    }
}

/// Boolean expressions (assume predicates), including pointer equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CBool {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Arithmetic (or pointer) comparison.
    Cmp(CmpOp, CExpr, CExpr),
    /// Negation.
    Not(Box<CBool>),
    /// Conjunction.
    And(Box<CBool>, Box<CBool>),
    /// Disjunction.
    Or(Box<CBool>, Box<CBool>),
}

impl CBool {
    /// Logical negation, flipping comparisons in place.
    pub fn negate(&self) -> CBool {
        match self {
            CBool::True => CBool::False,
            CBool::False => CBool::True,
            CBool::Cmp(op, a, b) => CBool::Cmp(op.negate(), a.clone(), b.clone()),
            CBool::Not(b) => (**b).clone(),
            other => CBool::Not(Box::new(other.clone())),
        }
    }

    /// Collects the lvalues read by this predicate.
    pub fn collect_reads(&self, out: &mut Vec<CLval>) {
        match self {
            CBool::True | CBool::False => {}
            CBool::Cmp(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            CBool::Not(b) => b.collect_reads(out),
            CBool::And(a, b) | CBool::Or(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
        }
    }
}

/// The operation labeling a CFA edge (paper Fig. 3 rows).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// `lv := e`.
    Assign(CLval, CExpr),
    /// `a[idx] := e` — an array element store (a *weak* update of the
    /// array's summary cell for every analysis; exact for the
    /// interpreter).
    ArrStore(VarId, CExpr, CExpr),
    /// `lv := nondet()` — external input.
    Havoc(CLval),
    /// `assume(p)` — the edge may be traversed only in states satisfying
    /// `p`.
    Assume(CBool),
    /// A call to `f`; control jumps to `f`'s entry location. Identity on
    /// the state (arguments were passed through transfer globals).
    Call(FuncId),
    /// Return; control transfers to the successor of the matching call
    /// edge. Identity on the state.
    Return,
}

impl Op {
    /// The lvalues read by this operation (the paper's `Rd.op`).
    ///
    /// Calls and returns read nothing (Fig. 3); assignment reads `Lvs.e`
    /// (plus the pointer for a `*p :=` write); assumes read `Lvs.p`.
    pub fn reads(&self) -> Vec<CLval> {
        let mut out = Vec::new();
        match self {
            Op::Assign(lv, e) => {
                if let CLval::Deref(p) = lv {
                    // Writing through `*p` reads the pointer `p`.
                    out.push(CLval::Var(*p));
                }
                e.collect_reads(&mut out);
            }
            Op::ArrStore(_, idx, val) => {
                idx.collect_reads(&mut out);
                val.collect_reads(&mut out);
            }
            Op::Havoc(lv) => {
                if let CLval::Deref(p) = lv {
                    out.push(CLval::Var(*p));
                }
            }
            Op::Assume(p) => p.collect_reads(&mut out),
            Op::Call(_) | Op::Return => {}
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The lvalue *syntactically* assigned by this operation, if any.
    ///
    /// Alias-aware may/must write sets (the paper's generalized `Wt`,
    /// §3.4) are computed in the `dataflow` crate on top of this.
    pub fn write(&self) -> Option<CLval> {
        match self {
            Op::Assign(lv, _) | Op::Havoc(lv) => Some(*lv),
            Op::ArrStore(a, _, _) => Some(CLval::Arr(*a)),
            Op::Assume(_) | Op::Call(_) | Op::Return => None,
        }
    }

    /// Whether this op is an assume.
    pub fn is_assume(&self) -> bool {
        matches!(self, Op::Assume(_))
    }
}

/// A CFA edge `(pc, op, pc')`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source location.
    pub src: Loc,
    /// The labeling operation.
    pub op: Op,
    /// Target location.
    pub dst: Loc,
}

/// The control flow automaton of one function.
#[derive(Debug, Clone)]
pub struct Cfa {
    func: FuncId,
    name: String,
    entry: Loc,
    exit: Loc,
    error_locs: Vec<Loc>,
    params: Vec<VarId>,
    locals: Vec<VarId>,
    n_locs: u32,
    edges: Vec<Edge>,
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
}

impl Cfa {
    /// This CFA's function id.
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// The function's source name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The start location `pc_0`.
    pub fn entry(&self) -> Loc {
        self.entry
    }

    /// The exit location `pc_out`.
    pub fn exit(&self) -> Loc {
        self.exit
    }

    /// The error locations created by `error()` / failed `assert` in this
    /// function, in source order. Error locations have no outgoing edges
    /// and are distinct from `pc_out`.
    pub fn error_locs(&self) -> &[Loc] {
        &self.error_locs
    }

    /// Parameter variables (already interned as qualified locals).
    pub fn params(&self) -> &[VarId] {
        &self.params
    }

    /// All locals, including parameters.
    pub fn locals(&self) -> &[VarId] {
        &self.locals
    }

    /// Number of locations in this CFA.
    pub fn n_locs(&self) -> usize {
        self.n_locs as usize
    }

    /// All edges, indexable by the `idx` field of [`crate::EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn edge(&self, idx: u32) -> &Edge {
        &self.edges[idx as usize]
    }

    /// Outgoing edge indices of a location.
    pub fn succ_edges(&self, loc: Loc) -> &[u32] {
        debug_assert_eq!(loc.func, self.func);
        &self.succs[loc.idx as usize]
    }

    /// Incoming edge indices of a location.
    pub fn pred_edges(&self, loc: Loc) -> &[u32] {
        debug_assert_eq!(loc.func, self.func);
        &self.preds[loc.idx as usize]
    }

    /// Iterates over all locations of this CFA.
    pub fn locs(&self) -> impl Iterator<Item = Loc> + '_ {
        let func = self.func;
        (0..self.n_locs).map(move |idx| Loc { func, idx })
    }
}

/// Interned variable table shared by all CFAs of a program.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<String>,
    kinds: Vec<VarKind>,
    index: HashMap<String, VarId>,
}

impl VarTable {
    /// Interns (or finds) a variable by its fully qualified name.
    pub fn intern(&mut self, name: &str, kind: VarKind) -> VarId {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = VarId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.kinds.push(kind);
        self.index.insert(name.to_owned(), v);
        v
    }

    /// Looks up a variable by qualified name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// The qualified name of a variable.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// The kind (global / local-of) of a variable.
    pub fn kind(&self, v: VarId) -> VarKind {
        self.kinds[v.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A whole program: one CFA per function plus the shared variable table.
#[derive(Debug, Clone)]
pub struct Program {
    vars: VarTable,
    cfas: Vec<Cfa>,
    func_index: HashMap<String, FuncId>,
    globals: Vec<VarId>,
    main: FuncId,
}

impl Program {
    /// The `main` function's id.
    pub fn main(&self) -> FuncId {
        self.main
    }

    /// The CFA of function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a function of this program.
    pub fn cfa(&self, f: FuncId) -> &Cfa {
        &self.cfas[f.index()]
    }

    /// All CFAs, indexable by [`FuncId`].
    pub fn cfas(&self) -> &[Cfa] {
        &self.cfas
    }

    /// Looks up a function id by source name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.func_index.get(name).copied()
    }

    /// The shared variable table.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Program globals (including generated transfer variables).
    pub fn globals(&self) -> &[VarId] {
        &self.globals
    }

    /// The edge identified by `id`.
    pub fn edge(&self, id: crate::EdgeId) -> &Edge {
        self.cfa(id.func).edge(id.idx)
    }

    /// The declared length of array `v`, or `None` if `v` is not an
    /// array.
    pub fn array_len(&self, v: VarId) -> Option<u32> {
        match self.vars.kind(v) {
            VarKind::Array(n) => Some(n),
            _ => None,
        }
    }

    /// Total number of CFA edges across all functions.
    pub fn n_edges(&self) -> usize {
        self.cfas.iter().map(|c| c.edges().len()).sum()
    }

    /// Total number of locations across all functions.
    pub fn n_locs(&self) -> usize {
        self.cfas.iter().map(|c| c.n_locs()).sum()
    }
}

/// Incremental builder used by the lowering pass (and by tests that
/// construct CFAs directly).
#[derive(Debug)]
pub struct ProgramBuilder {
    vars: VarTable,
    cfas: Vec<Cfa>,
    func_index: HashMap<String, FuncId>,
    globals: Vec<VarId>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            vars: VarTable::default(),
            cfas: Vec::new(),
            func_index: HashMap::new(),
            globals: Vec::new(),
        }
    }

    /// Interns a global variable.
    pub fn global(&mut self, name: &str) -> VarId {
        let v = self.vars.intern(name, VarKind::Global);
        if !self.globals.contains(&v) {
            self.globals.push(v);
        }
        v
    }

    /// Interns a global array of `len` elements.
    pub fn array(&mut self, name: &str, len: u32) -> VarId {
        let v = self.vars.intern(name, VarKind::Array(len));
        if !self.globals.contains(&v) {
            self.globals.push(v);
        }
        v
    }

    /// Reserves a function id (so calls can be lowered before the callee's
    /// body is built). The CFA body must later be supplied via
    /// [`CfaBuilder::finish`] in the same order ids were reserved.
    pub fn declare_function(&mut self, name: &str) -> FuncId {
        let id = FuncId(self.func_index.len() as u32);
        let prev = self.func_index.insert(name.to_owned(), id);
        assert!(prev.is_none(), "function `{name}` declared twice");
        id
    }

    /// Access to the variable table for interning locals.
    pub fn vars_mut(&mut self) -> &mut VarTable {
        &mut self.vars
    }

    /// Starts building the CFA for a declared function.
    pub fn cfa_builder(&mut self, func: FuncId, name: &str) -> CfaBuilder {
        CfaBuilder {
            func,
            name: name.to_owned(),
            edges: Vec::new(),
            n_locs: 0,
            entry: None,
            exit: None,
            error_locs: Vec::new(),
            params: Vec::new(),
            locals: Vec::new(),
        }
    }

    /// Adds a finished CFA. Must be called in [`FuncId`] order.
    pub fn push_cfa(&mut self, cfa: Cfa) {
        assert_eq!(
            cfa.func.index(),
            self.cfas.len(),
            "CFAs must be pushed in FuncId order"
        );
        self.cfas.push(cfa);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if `main` was never declared or some declared function has
    /// no CFA.
    pub fn finish(self) -> Program {
        let main = *self
            .func_index
            .get("main")
            .expect("program must define `main`");
        assert_eq!(
            self.cfas.len(),
            self.func_index.len(),
            "missing CFA for a declared function"
        );
        Program {
            vars: self.vars,
            cfas: self.cfas,
            func_index: self.func_index,
            globals: self.globals,
            main,
        }
    }
}

/// Builder for a single function's CFA.
#[derive(Debug)]
pub struct CfaBuilder {
    func: FuncId,
    name: String,
    edges: Vec<Edge>,
    n_locs: u32,
    entry: Option<Loc>,
    exit: Option<Loc>,
    error_locs: Vec<Loc>,
    params: Vec<VarId>,
    locals: Vec<VarId>,
}

impl CfaBuilder {
    /// Allocates a fresh location.
    pub fn fresh_loc(&mut self) -> Loc {
        let l = Loc {
            func: self.func,
            idx: self.n_locs,
        };
        self.n_locs += 1;
        l
    }

    /// Records the entry location.
    pub fn set_entry(&mut self, l: Loc) {
        self.entry = Some(l);
    }

    /// Records the exit location.
    pub fn set_exit(&mut self, l: Loc) {
        self.exit = Some(l);
    }

    /// Marks `l` as an error location.
    pub fn add_error_loc(&mut self, l: Loc) {
        self.error_locs.push(l);
    }

    /// Records a parameter variable.
    pub fn add_param(&mut self, v: VarId) {
        self.params.push(v);
        self.locals.push(v);
    }

    /// Records a non-parameter local.
    pub fn add_local(&mut self, v: VarId) {
        self.locals.push(v);
    }

    /// Adds an edge and returns its dense index.
    pub fn add_edge(&mut self, src: Loc, op: Op, dst: Loc) -> u32 {
        debug_assert_eq!(src.func, self.func);
        debug_assert_eq!(dst.func, self.func);
        let idx = self.edges.len() as u32;
        self.edges.push(Edge { src, op, dst });
        idx
    }

    /// The function this builder is for.
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// Finalizes the CFA, computing successor/predecessor adjacency.
    ///
    /// # Panics
    ///
    /// Panics if entry or exit was never set.
    pub fn finish(self) -> Cfa {
        let entry = self.entry.expect("entry not set");
        let exit = self.exit.expect("exit not set");
        let mut succs = vec![Vec::new(); self.n_locs as usize];
        let mut preds = vec![Vec::new(); self.n_locs as usize];
        for (i, e) in self.edges.iter().enumerate() {
            succs[e.src.idx as usize].push(i as u32);
            preds[e.dst.idx as usize].push(i as u32);
        }
        Cfa {
            func: self.func,
            name: self.name,
            entry,
            exit,
            error_locs: self.error_locs,
            params: self.params,
            locals: self.locals,
            n_locs: self.n_locs,
            edges: self.edges,
            succs,
            preds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfa() -> (Program, FuncId) {
        let mut pb = ProgramBuilder::new();
        let x = pb.global("x");
        let f = pb.declare_function("main");
        let mut cb = pb.cfa_builder(f, "main");
        let l0 = cb.fresh_loc();
        let l1 = cb.fresh_loc();
        let l2 = cb.fresh_loc();
        cb.set_entry(l0);
        cb.set_exit(l2);
        cb.add_edge(l0, Op::Assign(CLval::Var(x), CExpr::Int(1)), l1);
        cb.add_edge(l1, Op::Return, l2);
        pb.push_cfa(cb.finish());
        (pb.finish(), f)
    }

    #[test]
    fn builder_roundtrip() {
        let (p, f) = tiny_cfa();
        let c = p.cfa(f);
        assert_eq!(c.edges().len(), 2);
        assert_eq!(c.succ_edges(c.entry()), &[0]);
        assert_eq!(c.pred_edges(c.exit()), &[1]);
        assert_eq!(p.vars().name(VarId(0)), "x");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = VarTable::default();
        let a = t.intern("a", VarKind::Global);
        let a2 = t.intern("a", VarKind::Global);
        assert_eq!(a, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn op_reads_and_writes() {
        let p = VarId(0);
        let x = VarId(1);
        // *p := x + 1 reads {p, x} and writes *p.
        let op = Op::Assign(
            CLval::Deref(p),
            CExpr::Bin(BinOp::Add, Box::new(CExpr::var(x)), Box::new(CExpr::Int(1))),
        );
        assert_eq!(op.reads(), vec![CLval::Var(p), CLval::Var(x)]);
        assert_eq!(op.write(), Some(CLval::Deref(p)));
        // assume(*p > 0) reads {p, *p}.
        let op = Op::Assume(CBool::Cmp(
            CmpOp::Gt,
            CExpr::Lval(CLval::Deref(p)),
            CExpr::Int(0),
        ));
        assert_eq!(op.reads(), vec![CLval::Var(p), CLval::Deref(p)]);
        assert_eq!(op.write(), None);
        assert_eq!(Op::Return.reads(), vec![]);
    }

    #[test]
    fn cbool_negate_involution_on_cmp() {
        let c = CBool::Cmp(CmpOp::Le, CExpr::var(VarId(0)), CExpr::Int(3));
        assert_eq!(c.negate().negate(), c);
    }
}
