//! `cfa` — control flow automata, the program representation of the paper.
//!
//! A program is a set of CFAs, one per function (§3.1, §4): a rooted
//! directed graph whose locations are program counters and whose edges are
//! labeled with operations — assignments, `assume` predicates, calls, and
//! returns. This crate defines the IR ([`ir`]), the lowering from the
//! [`imp`] AST ([`fn@lower`]), program paths with the paper's `Call.i`
//! bookkeeping ([`path`]), a structural validator ([`fn@validate`]), and a
//! Graphviz exporter ([`dot`]).
//!
//! Parameter passing follows the paper's §4 formalization literally:
//! arguments and return values travel through per-function global transfer
//! variables (`f::arg0`, `f::ret`), so call and return edges are identity
//! transitions.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ast = imp::parse("fn main() { local a; if (a > 0) { error(); } }")?;
//! let program = cfa::lower(&ast)?;
//! let main = program.cfa(program.main());
//! assert_eq!(main.error_locs().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod dot;
pub mod ir;
pub mod lower;
pub mod path;
pub mod validate;

pub use ir::{CBool, CExpr, CLval, Cfa, Edge, FuncId, Loc, Op, Program, VarId, VarKind};
pub use lower::{lower, LowerError};
pub use path::{EdgeId, Path, PathError, PathStats};
pub use validate::{validate, ValidateError};
