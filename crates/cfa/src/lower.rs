//! Lowering from the [`imp`] AST to control flow automata.
//!
//! The lowering follows the paper's conventions:
//!
//! * one CFA per function; branch statements become pairs of `assume`
//!   edges (condition / negated condition);
//! * `assert(c)` becomes a branch whose false arm enters a fresh *error
//!   location*; `error()` marks the current location as an error location;
//! * parameters and return values are passed through generated global
//!   transfer variables `f::argN` / `f::ret` (§4), so `call` and `return`
//!   edges are identity transitions;
//! * locals of function `f` are interned under qualified names `f::x`,
//!   realizing the paper's disjoint-local-names assumption;
//! * all `return` edges lead to the function's exit location.
//!
//! Join points are realized by *location unification* (a union–find over
//! builder locations) rather than by inserting `assume(true)` "goto"
//! edges, so the CFA contains no spurious unconditional branches — every
//! `assume` edge in a lowered CFA corresponds to a real branch decision.
//! This matters for slice-size measurements: the slicer never has to
//! consider edges that exist only as lowering artifacts.

use crate::ir::*;
use imp::ast;
use std::collections::HashMap;
use std::fmt;

/// An error produced during lowering.
///
/// The resolver in [`imp`] catches all user-facing problems; lowering
/// errors indicate constructs the CFA language cannot express (currently
/// none — the type exists for interface stability and future extensions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Union–find over builder-local location indices, used to merge join
/// points without emitting edges.
#[derive(Debug, Default)]
struct LocUnify {
    parent: Vec<u32>,
}

impl LocUnify {
    fn ensure(&mut self, idx: u32) {
        while self.parent.len() <= idx as usize {
            self.parent.push(self.parent.len() as u32);
        }
    }

    fn find(&mut self, idx: u32) -> u32 {
        self.ensure(idx);
        let mut root = idx;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = idx;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn unify(&mut self, a: u32, b: u32) {
        self.ensure(a.max(b));
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

struct FuncLowerer<'a> {
    cb: CfaBuilder,
    uf: LocUnify,
    /// Source name -> VarId for this function's scope (globals overlaid
    /// with qualified locals).
    scope: HashMap<String, VarId>,
    funcs: &'a HashMap<String, FuncId>,
    /// `f::argN` transfer variables, per function.
    arg_vars: &'a HashMap<FuncId, Vec<VarId>>,
    /// `f::ret` transfer variables, per function.
    ret_vars: &'a HashMap<FuncId, VarId>,
    /// Stack of (continue-target, break-target).
    loops: Vec<(Loc, Loc)>,
    exit: Loc,
    ret_var: VarId,
    /// Per-function scratch local for lowering `a[i] = nondet()`.
    scratch: VarId,
}

impl<'a> FuncLowerer<'a> {
    /// Lowers a non-array lvalue.
    ///
    /// # Panics
    ///
    /// Panics on `Lvalue::Elem` — array stores carry their index in the
    /// operation, so they go through [`FuncLowerer::assign_to`].
    fn lval(&self, lv: &ast::Lvalue) -> CLval {
        match lv {
            ast::Lvalue::Var(x) => CLval::Var(self.scope[x.as_str()]),
            ast::Lvalue::Deref(p) => CLval::Deref(self.scope[p.as_str()]),
            ast::Lvalue::Elem(..) => unreachable!("array stores lower via assign_to"),
        }
    }

    fn expr(&self, e: &ast::Expr) -> CExpr {
        match e {
            ast::Expr::Int(n) => CExpr::Int(*n),
            ast::Expr::Lval(ast::Lvalue::Elem(a, idx)) => {
                CExpr::ArrLoad(self.scope[a.as_str()], Box::new(self.expr(idx)))
            }
            ast::Expr::Lval(lv) => CExpr::Lval(self.lval(lv)),
            ast::Expr::AddrOf(x) => CExpr::AddrOf(self.scope[x.as_str()]),
            ast::Expr::Neg(i) => CExpr::Neg(Box::new(self.expr(i))),
            ast::Expr::Bin(op, a, b) => {
                CExpr::Bin(*op, Box::new(self.expr(a)), Box::new(self.expr(b)))
            }
        }
    }

    /// Emits the edge(s) assigning the CFA expression `rhs` to the AST
    /// lvalue `lv` (array stores become [`Op::ArrStore`]).
    fn assign_to(&mut self, cur: Loc, lv: &ast::Lvalue, rhs: CExpr) -> Loc {
        match lv {
            ast::Lvalue::Elem(a, idx) => {
                let arr = self.scope[a.as_str()];
                let idx = self.expr(idx);
                self.step(cur, Op::ArrStore(arr, idx, rhs))
            }
            other => {
                let clv = self.lval(other);
                self.step(cur, Op::Assign(clv, rhs))
            }
        }
    }

    fn cond(&self, c: &ast::BoolExpr) -> CBool {
        match c {
            ast::BoolExpr::True => CBool::True,
            ast::BoolExpr::False => CBool::False,
            ast::BoolExpr::Cmp(op, a, b) => CBool::Cmp(*op, self.expr(a), self.expr(b)),
            ast::BoolExpr::Not(i) => CBool::Not(Box::new(self.cond(i))),
            ast::BoolExpr::And(a, b) => CBool::And(Box::new(self.cond(a)), Box::new(self.cond(b))),
            ast::BoolExpr::Or(a, b) => CBool::Or(Box::new(self.cond(a)), Box::new(self.cond(b))),
        }
    }

    /// Lowers a statement list starting at `cur`. Returns the end
    /// location and whether it is reachable from `cur` (false after
    /// `return` / `break` / `continue`).
    fn stmts(&mut self, stmts: &[ast::Stmt], mut cur: Loc, mut alive: bool) -> (Loc, bool) {
        for s in stmts {
            let (next, a) = self.stmt(s, cur, alive);
            cur = next;
            alive = a;
        }
        (cur, alive)
    }

    fn step(&mut self, cur: Loc, op: Op) -> Loc {
        let next = self.cb.fresh_loc();
        self.cb.add_edge(cur, op, next);
        next
    }

    fn stmt(&mut self, s: &ast::Stmt, cur: Loc, alive: bool) -> (Loc, bool) {
        match s {
            ast::Stmt::Skip(_) => (cur, alive),
            ast::Stmt::Assign(_, lv, e) => {
                let rhs = self.expr(e);
                (self.assign_to(cur, lv, rhs), alive)
            }
            ast::Stmt::Havoc(_, lv) => match lv {
                ast::Lvalue::Elem(..) => {
                    // `a[i] = nondet()` — havoc into a scratch local,
                    // then store it.
                    let tmp = self.scratch;
                    let cur = self.step(cur, Op::Havoc(CLval::Var(tmp)));
                    (self.assign_to(cur, lv, CExpr::var(tmp)), alive)
                }
                _ => (self.step(cur, Op::Havoc(self.lval(lv))), alive),
            },
            ast::Stmt::Call(_, dst, fname, args) => {
                let fid = self.funcs[fname.as_str()];
                let mut cur = cur;
                let arg_vars = self.arg_vars[&fid].clone();
                for (i, a) in args.iter().enumerate() {
                    let op = Op::Assign(CLval::Var(arg_vars[i]), self.expr(a));
                    cur = self.step(cur, op);
                }
                cur = self.step(cur, Op::Call(fid));
                if let Some(lv) = dst {
                    let rv = self.ret_vars[&fid];
                    cur = self.assign_to(cur, lv, CExpr::var(rv));
                }
                (cur, alive)
            }
            ast::Stmt::If(_, c, then, els) => {
                let cb = self.cond(c);
                let t_entry = self.cb.fresh_loc();
                let e_entry = self.cb.fresh_loc();
                self.cb.add_edge(cur, Op::Assume(cb.clone()), t_entry);
                self.cb.add_edge(cur, Op::Assume(cb.negate()), e_entry);
                let (t_end, t_alive) = self.stmts(then, t_entry, alive);
                let (e_end, e_alive) = self.stmts(els, e_entry, alive);
                match (t_alive, e_alive) {
                    (true, true) => {
                        self.uf.unify(e_end.idx, t_end.idx);
                        (t_end, alive)
                    }
                    (true, false) => (t_end, alive),
                    (false, true) => (e_end, alive),
                    (false, false) => (self.cb.fresh_loc(), false),
                }
            }
            ast::Stmt::While(_, c, body) => {
                let head = cur;
                let cb = self.cond(c);
                let b_entry = self.cb.fresh_loc();
                let after = self.cb.fresh_loc();
                self.cb.add_edge(head, Op::Assume(cb.clone()), b_entry);
                self.cb.add_edge(head, Op::Assume(cb.negate()), after);
                self.loops.push((head, after));
                let (b_end, b_alive) = self.stmts(body, b_entry, alive);
                self.loops.pop();
                if b_alive {
                    self.uf.unify(b_end.idx, head.idx);
                }
                (after, alive)
            }
            ast::Stmt::Assume(_, c) => {
                let cb = self.cond(c);
                (self.step(cur, Op::Assume(cb)), alive)
            }
            ast::Stmt::Assert(_, c) => {
                // assert(c) ≡ if (!c) { error(); }   (paper §1: the branch
                // at 6: models the check, ERR is reached on violation).
                let cb = self.cond(c);
                let err = self.cb.fresh_loc();
                let ok = self.cb.fresh_loc();
                self.cb.add_edge(cur, Op::Assume(cb.negate()), err);
                self.cb.add_edge(cur, Op::Assume(cb), ok);
                self.cb.add_error_loc(err);
                (ok, alive)
            }
            ast::Stmt::Error(_) => {
                // The current location *is* the error location; whatever
                // edge last targeted `cur` leads straight into it.
                self.cb.add_error_loc(cur);
                (self.cb.fresh_loc(), false)
            }
            ast::Stmt::Return(_, e) => {
                let mut cur = cur;
                if let Some(e) = e {
                    let op = Op::Assign(CLval::Var(self.ret_var), self.expr(e));
                    cur = self.step(cur, op);
                }
                self.cb.add_edge(cur, Op::Return, self.exit);
                (self.cb.fresh_loc(), false)
            }
            ast::Stmt::Break(_) => {
                let (_, after) = *self
                    .loops
                    .last()
                    .expect("resolver checked break is in a loop");
                if alive {
                    self.uf.unify(cur.idx, after.idx);
                }
                (self.cb.fresh_loc(), false)
            }
            ast::Stmt::Continue(_) => {
                let (head, _) = *self
                    .loops
                    .last()
                    .expect("resolver checked continue is in a loop");
                if alive {
                    self.uf.unify(cur.idx, head.idx);
                }
                (self.cb.fresh_loc(), false)
            }
        }
    }
}

/// Applies the union–find and compacts location indices, rebuilding the
/// CFA through a fresh builder.
fn compact(cb: CfaBuilder, mut uf: LocUnify, pb: &mut ProgramBuilder, name: &str) -> Cfa {
    let old = cb.finish();
    let func = old.func();
    // Map every union–find root to a dense new index, in first-seen order
    // (entry first, then exit, then edge endpoints) so output is
    // deterministic.
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut n_new = 0u32;
    let mut resolve = |idx: u32| -> u32 {
        let root = uf.find(idx);
        *remap.entry(root).or_insert_with(|| {
            let v = n_new;
            n_new += 1;
            v
        })
    };
    let entry_idx = resolve(old.entry().idx);
    let exit_idx = resolve(old.exit().idx);
    let edges: Vec<(u32, Op, u32)> = old
        .edges()
        .iter()
        .map(|e| (resolve(e.src.idx), e.op.clone(), resolve(e.dst.idx)))
        .collect();
    let mut err_idxs: Vec<u32> = old.error_locs().iter().map(|l| resolve(l.idx)).collect();
    err_idxs.dedup();
    // End the mutable borrow of `remap`/`n_new` held by the closure.
    #[allow(clippy::drop_non_drop)]
    drop(resolve);

    let mut nb = pb.cfa_builder(func, name);
    let locs: Vec<Loc> = (0..n_new).map(|_| nb.fresh_loc()).collect();
    nb.set_entry(locs[entry_idx as usize]);
    nb.set_exit(locs[exit_idx as usize]);
    for (s, op, d) in edges {
        nb.add_edge(locs[s as usize], op, locs[d as usize]);
    }
    for e in err_idxs {
        nb.add_error_loc(locs[e as usize]);
    }
    for &p in old.params() {
        nb.add_param(p);
    }
    for &l in old.locals() {
        if !old.params().contains(&l) {
            nb.add_local(l);
        }
    }
    nb.finish()
}

/// Lowers a resolved [`imp`] program into a CFA [`Program`].
///
/// # Errors
///
/// Currently infallible for programs accepted by [`imp::parse`]; the
/// `Result` is part of the stable interface.
///
/// # Panics
///
/// Panics if `ast` was not resolved (undeclared names, missing `main`).
pub fn lower(ast: &ast::Program) -> Result<Program, LowerError> {
    let mut pb = ProgramBuilder::new();
    // Globals first, in declaration order, then arrays.
    let mut global_scope: HashMap<String, VarId> = HashMap::new();
    for g in &ast.globals {
        let v = pb.global(g);
        global_scope.insert(g.clone(), v);
    }
    for (a, len) in &ast.arrays {
        let v = pb.array(a, *len);
        global_scope.insert(a.clone(), v);
    }
    // Declare all functions and their transfer variables.
    let mut funcs: HashMap<String, FuncId> = HashMap::new();
    let mut arg_vars: HashMap<FuncId, Vec<VarId>> = HashMap::new();
    let mut ret_vars: HashMap<FuncId, VarId> = HashMap::new();
    for f in &ast.functions {
        let fid = pb.declare_function(&f.name);
        funcs.insert(f.name.clone(), fid);
        let args = (0..f.params.len())
            .map(|i| pb.global(&format!("{}::arg{}", f.name, i)))
            .collect::<Vec<_>>();
        arg_vars.insert(fid, args);
        ret_vars.insert(fid, pb.global(&format!("{}::ret", f.name)));
    }
    // Lower each function.
    for f in &ast.functions {
        let fid = funcs[&f.name];
        let mut scope = global_scope.clone();
        let mut params = Vec::new();
        let mut locals = Vec::new();
        for p in &f.params {
            let v = pb
                .vars_mut()
                .intern(&format!("{}::{}", f.name, p), VarKind::Local(fid));
            scope.insert(p.clone(), v);
            params.push(v);
        }
        for l in &f.locals {
            let v = pb
                .vars_mut()
                .intern(&format!("{}::{}", f.name, l), VarKind::Local(fid));
            scope.insert(l.clone(), v);
            locals.push(v);
        }
        let mut cb = pb.cfa_builder(fid, &f.name);
        let entry = cb.fresh_loc();
        let exit = cb.fresh_loc();
        cb.set_entry(entry);
        cb.set_exit(exit);
        for &p in &params {
            cb.add_param(p);
        }
        for &l in &locals {
            cb.add_local(l);
        }
        let ret_var = ret_vars[&fid];
        let scratch = pb
            .vars_mut()
            .intern(&format!("{}::$scratch", f.name), VarKind::Local(fid));
        let mut fl = FuncLowerer {
            cb,
            uf: LocUnify::default(),
            scope,
            funcs: &funcs,
            arg_vars: &arg_vars,
            ret_vars: &ret_vars,
            loops: Vec::new(),
            exit,
            ret_var,
            scratch,
        };
        // Prologue: copy transfer arguments into the formals (§4).
        let mut cur = entry;
        let f_args = fl.arg_vars[&fid].clone();
        for (i, &p) in params.iter().enumerate() {
            cur = fl.step(cur, Op::Assign(CLval::Var(p), CExpr::var(f_args[i])));
        }
        let (end, alive) = fl.stmts(&f.body, cur, true);
        if alive {
            fl.cb.add_edge(end, Op::Return, exit);
        }
        let FuncLowerer { cb, uf, .. } = fl;
        let cfa = compact(cb, uf, &mut pb, &f.name);
        pb.push_cfa(cfa);
    }
    Ok(pb.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Op;

    fn lower_src(src: &str) -> Program {
        lower(&imp::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn lowers_straight_line() {
        let p = lower_src("fn main() { local a; a = 1; a = a + 1; }");
        let m = p.cfa(p.main());
        // a=1, a=a+1, implicit return.
        assert_eq!(m.edges().len(), 3);
        assert!(matches!(m.edges().last().unwrap().op, Op::Return));
        assert_eq!(m.edges().last().unwrap().dst, m.exit());
    }

    #[test]
    fn if_branches_share_join_without_goto_edges() {
        let p = lower_src("fn main() { local a, b; if (a > 0) { b = 1; } else { b = 2; } a = 3; }");
        let m = p.cfa(p.main());
        // 2 assumes + 2 assigns + 1 join assign + return = 6 edges, and no
        // assume(true) goto edges.
        assert_eq!(m.edges().len(), 6);
        let assumes: Vec<_> = m.edges().iter().filter(|e| e.op.is_assume()).collect();
        assert_eq!(assumes.len(), 2);
        // The two branch assigns end at the same location.
        let assigns: Vec<_> = m
            .edges()
            .iter()
            .filter(|e| matches!(e.op, Op::Assign(..)))
            .collect();
        assert_eq!(
            assigns[0].dst, assigns[1].dst,
            "branch ends unified at join"
        );
    }

    #[test]
    fn while_loop_has_back_edge_by_unification() {
        let p = lower_src("fn main() { local i; while (i < 3) { i = i + 1; } }");
        let m = p.cfa(p.main());
        // assume(i<3), assume(i>=3), i=i+1 (targets head), return.
        assert_eq!(m.edges().len(), 4);
        let head = m.entry();
        let body_assign = m
            .edges()
            .iter()
            .find(|e| matches!(e.op, Op::Assign(..)))
            .unwrap();
        assert_eq!(body_assign.dst, head, "loop body flows back to the head");
    }

    #[test]
    fn error_marks_location_without_extra_edges() {
        let p = lower_src("fn main() { local a; if (a > 0) { error(); } }");
        let m = p.cfa(p.main());
        assert_eq!(m.error_locs().len(), 1);
        let err = m.error_locs()[0];
        assert!(
            m.succ_edges(err).is_empty(),
            "error location has no successors"
        );
        // The then-branch assume edge leads directly to the error loc.
        let into_err = m.pred_edges(err);
        assert_eq!(into_err.len(), 1);
        assert!(m.edge(into_err[0]).op.is_assume());
    }

    #[test]
    fn assert_lowers_to_branch_with_error_arm() {
        let p = lower_src("fn main() { local a; assert(a == 0); a = 1; }");
        let m = p.cfa(p.main());
        assert_eq!(m.error_locs().len(), 1);
        let err = m.error_locs()[0];
        let pred = m.pred_edges(err);
        assert_eq!(pred.len(), 1);
        // The error arm is the negated assertion.
        match &m.edge(pred[0]).op {
            Op::Assume(CBool::Cmp(op, _, _)) => assert_eq!(*op, imp::ast::CmpOp::Ne),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn call_passes_through_transfer_globals() {
        let p = lower_src("fn f(x) { return x + 1; } fn main() { local a; a = f(2); }");
        let m = p.cfa(p.main());
        let fid = p.func_id("f").unwrap();
        let arg0 = p.vars().lookup("f::arg0").unwrap();
        let ret = p.vars().lookup("f::ret").unwrap();
        // main: f::arg0 := 2 ; call f ; a := f::ret ; return.
        assert_eq!(m.edges().len(), 4);
        assert!(matches!(&m.edges()[0].op, Op::Assign(CLval::Var(v), CExpr::Int(2)) if *v == arg0));
        assert!(matches!(m.edges()[1].op, Op::Call(f) if f == fid));
        assert!(matches!(&m.edges()[2].op, Op::Assign(_, CExpr::Lval(CLval::Var(v))) if *v == ret));
        // f: x := f::arg0 ; f::ret := x + 1 ; return.
        let fc = p.cfa(fid);
        assert_eq!(fc.edges().len(), 3);
        let x = p.vars().lookup("f::x").unwrap();
        assert!(matches!(&fc.edges()[0].op, Op::Assign(CLval::Var(v), _) if *v == x));
        assert!(matches!(&fc.edges()[1].op, Op::Assign(CLval::Var(v), _) if *v == ret));
        assert!(matches!(fc.edges()[2].op, Op::Return));
    }

    #[test]
    fn break_and_continue_target_loop_locs() {
        let p = lower_src(
            "fn main() { local i; while (i < 10) { if (i == 5) { break; } if (i == 3) { continue; } i = i + 1; } i = 99; }",
        );
        let m = p.cfa(p.main());
        // Must be a well-formed graph; the final assignment is reachable.
        let last_assign = m
            .edges()
            .iter()
            .rev()
            .find(|e| matches!(e.op, Op::Assign(..)))
            .unwrap();
        assert!(matches!(last_assign.op, Op::Assign(..)));
        crate::validate(&p).unwrap();
    }

    #[test]
    fn locals_are_qualified_per_function() {
        let p = lower_src("fn f() { local a; a = 1; } fn main() { local a; a = 2; f(); }");
        assert!(p.vars().lookup("f::a").is_some());
        assert!(p.vars().lookup("main::a").is_some());
        assert_ne!(p.vars().lookup("f::a"), p.vars().lookup("main::a"));
    }

    #[test]
    fn dead_code_after_return_gets_no_implicit_return() {
        let p = lower_src("fn main() { return; }");
        let m = p.cfa(p.main());
        assert_eq!(
            m.edges()
                .iter()
                .filter(|e| matches!(e.op, Op::Return))
                .count(),
            1
        );
    }

    #[test]
    fn ex2_from_the_paper_lowers() {
        // Figure 1(A), including the shaded lines.
        let src = r#"
            global a; global x;
            fn f() { }
            fn main() {
                local i;
                x = 0;
                if (a >= 0) { x = 1; }
                for (i = 1; i <= 1000; i = i + 1) { f(); }
                if (a >= 0) {
                    if (x == 0) { error(); }
                }
            }
        "#;
        let p = lower_src(src);
        crate::validate(&p).unwrap();
        assert_eq!(p.cfa(p.main()).error_locs().len(), 1);
    }
}
