//! Structural well-formedness checks for lowered programs.

use crate::ir::{Op, Program};
use std::fmt;

/// A structural defect found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CFA program: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

/// Checks the invariants every lowered [`Program`] must satisfy:
///
/// * every edge connects locations of its own CFA, within bounds;
/// * every `return` edge targets the exit location (§4: "all return
///   statements lead to the exit location");
/// * every `call` edge names a function of the program;
/// * error locations have no outgoing edges and are distinct from the
///   exit;
/// * the exit location has no outgoing edges.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    for cfa in program.cfas() {
        let n = cfa.n_locs() as u32;
        let name = cfa.name();
        if cfa.entry().idx >= n || cfa.exit().idx >= n {
            return Err(ValidateError(format!("`{name}`: entry/exit out of bounds")));
        }
        for (i, e) in cfa.edges().iter().enumerate() {
            if e.src.func != cfa.func() || e.dst.func != cfa.func() {
                return Err(ValidateError(format!("`{name}` edge {i}: crosses CFAs")));
            }
            if e.src.idx >= n || e.dst.idx >= n {
                return Err(ValidateError(format!(
                    "`{name}` edge {i}: location out of bounds"
                )));
            }
            match &e.op {
                Op::Return if e.dst != cfa.exit() => {
                    return Err(ValidateError(format!(
                        "`{name}` edge {i}: return does not target the exit location"
                    )));
                }
                Op::Call(f) if f.index() >= program.cfas().len() => {
                    return Err(ValidateError(format!(
                        "`{name}` edge {i}: call to unknown function"
                    )));
                }
                _ => {}
            }
        }
        if !cfa.succ_edges(cfa.exit()).is_empty() {
            return Err(ValidateError(format!(
                "`{name}`: exit location has outgoing edges"
            )));
        }
        for &err in cfa.error_locs() {
            if err == cfa.exit() {
                return Err(ValidateError(format!(
                    "`{name}`: exit marked as error location"
                )));
            }
            if !cfa.succ_edges(err).is_empty() {
                return Err(ValidateError(format!(
                    "`{name}`: error location {err} has outgoing edges"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;

    #[test]
    fn validates_lowered_program() {
        let ast = imp::parse(
            "global g; fn f(x) { if (x > 0) { return x; } return 0 - x; } \
             fn main() { local a; a = f(g); while (a > 0) { a = a - 1; } assert(a == 0); }",
        )
        .unwrap();
        let p = crate::lower(&ast).unwrap();
        validate(&p).unwrap();
    }

    #[test]
    fn rejects_return_not_to_exit() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main");
        let mut cb = pb.cfa_builder(f, "main");
        let l0 = cb.fresh_loc();
        let l1 = cb.fresh_loc();
        let l2 = cb.fresh_loc();
        cb.set_entry(l0);
        cb.set_exit(l2);
        cb.add_edge(l0, Op::Return, l1); // wrong: should target exit
        cb.add_edge(l1, Op::Return, l2);
        pb.push_cfa(cb.finish());
        let p = pb.finish();
        assert!(validate(&p).is_err());
    }

    #[test]
    fn rejects_error_loc_with_successors() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main");
        let mut cb = pb.cfa_builder(f, "main");
        let l0 = cb.fresh_loc();
        let l1 = cb.fresh_loc();
        cb.set_entry(l0);
        cb.set_exit(l1);
        cb.add_error_loc(l0);
        cb.add_edge(l0, Op::Return, l1);
        pb.push_cfa(cb.finish());
        let p = pb.finish();
        assert!(validate(&p).is_err());
    }
}
