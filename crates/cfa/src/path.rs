//! Program paths over CFAs (paper §3.1 "Program Paths" and §4).
//!
//! A path is a sequence of CFA edges in which intra-function flow is
//! edge-to-edge contiguous, a call edge is followed by the first edge of
//! the callee (starting at its entry location), and a return edge is
//! followed by a successor of the matching call edge. The matching is
//! captured by the paper's `Call.i` function, exposed here as
//! [`Path::call_origins`].

use crate::ir::{FuncId, Loc, Op, Program};
use std::fmt;

/// Identifies one edge of one CFA in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId {
    /// The owning function.
    pub func: FuncId,
    /// Dense index into [`crate::Cfa::edges`].
    pub idx: u32,
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}:e{}", self.func.0, self.idx)
    }
}

/// A structural problem found while checking a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// An [`EdgeId`] does not exist in the program.
    UnknownEdge {
        /// Position in the path.
        at: usize,
    },
    /// Within a function, consecutive edges do not connect.
    BrokenFlow {
        /// Position of the second edge of the broken pair.
        at: usize,
        /// Where the previous edge ended.
        expected: Loc,
        /// Where the offending edge starts.
        found: Loc,
    },
    /// The edge after a call does not start at the callee's entry.
    CallEntryMismatch {
        /// Position of the edge after the call.
        at: usize,
    },
    /// The edge after a return is not a successor of the matching call.
    ReturnMismatch {
        /// Position of the edge after the return.
        at: usize,
    },
    /// A return appears with no matching call frame (the path would
    /// return out of the frame it started in).
    UnbalancedReturn {
        /// Position of the offending return edge.
        at: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::UnknownEdge { at } => write!(f, "edge {at} does not exist in the program"),
            PathError::BrokenFlow {
                at,
                expected,
                found,
            } => {
                write!(
                    f,
                    "edge {at} starts at {found} but the previous edge ended at {expected}"
                )
            }
            PathError::CallEntryMismatch { at } => {
                write!(
                    f,
                    "edge {at} does not start at the callee entry after a call"
                )
            }
            PathError::ReturnMismatch { at } => {
                write!(
                    f,
                    "edge {at} does not continue from the matching call after a return"
                )
            }
            PathError::UnbalancedReturn { at } => {
                write!(f, "return at {at} has no matching call in the path")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A checked program path: a sequence of edges satisfying the paper's
/// program-path conditions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Path {
    edges: Vec<EdgeId>,
}

impl Path {
    /// Builds a path after checking the program-path conditions of §4.
    ///
    /// # Errors
    ///
    /// Returns the first [`PathError`] found, if any.
    pub fn new(program: &Program, edges: Vec<EdgeId>) -> Result<Path, PathError> {
        check_edges(program, &edges)?;
        Ok(Path { edges })
    }

    /// Builds a path without validity checks. Intended for callers that
    /// construct paths by valid-by-construction traversal (the
    /// interpreter, the model checker); debug builds still verify.
    pub fn new_unchecked(program: &Program, edges: Vec<EdgeId>) -> Path {
        debug_assert!(check_edges(program, &edges).is_ok(), "invalid path");
        let _ = program;
        Path { edges }
    }

    /// The edges of the path.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges (the paper's `|π|`).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The location the path ends at (target of the last edge).
    pub fn target(&self, program: &Program) -> Option<Loc> {
        self.edges.last().map(|&e| program.edge(e).dst)
    }

    /// The location the path starts at (source of the first edge).
    pub fn source(&self, program: &Program) -> Option<Loc> {
        self.edges.first().map(|&e| program.edge(e).src)
    }

    /// The paper's `Call.i` (0-based): for each position `i`, the position
    /// of the call edge that opened the frame `π.i` executes in, or `None`
    /// for positions in the outermost frame.
    ///
    /// Defined by (§4): `Call.1 = 1` and
    ///
    /// ```text
    /// Call.i = i-1                    if π.(i-1) is a call
    ///        = Call.(Call.(i-1))      if π.(i-1) is a return
    ///        = Call.(i-1)             otherwise
    /// ```
    pub fn call_origins(&self, program: &Program) -> Vec<Option<usize>> {
        let mut out = Vec::with_capacity(self.edges.len());
        for i in 0..self.edges.len() {
            if i == 0 {
                out.push(None);
                continue;
            }
            let prev = &program.edge(self.edges[i - 1]).op;
            let v = match prev {
                Op::Call(_) => Some(i - 1),
                Op::Return => {
                    // Pop one frame: the frame of position i is the frame
                    // the matching call edge itself executed in.
                    match out[i - 1] {
                        Some(call_pos) => out[call_pos],
                        None => None,
                    }
                }
                _ => out[i - 1],
            };
            out.push(v);
        }
        out
    }

    /// The operations labeling the path, in order (the paper's `Tr.π`).
    pub fn trace<'p>(&self, program: &'p Program) -> Vec<&'p Op> {
        self.edges.iter().map(|&e| &program.edge(e).op).collect()
    }

    /// Number of `assume` operations on the path (one per branch
    /// decision; a rough analogue of the paper's basic-block count).
    pub fn n_branches(&self, program: &Program) -> usize {
        self.edges
            .iter()
            .filter(|&&e| program.edge(e).op.is_assume())
            .count()
    }

    /// Aggregate statistics over the path (op-kind counts, functions
    /// visited, maximum call depth).
    pub fn stats(&self, program: &Program) -> PathStats {
        let mut st = PathStats::default();
        let mut depth = 0usize;
        let mut fns: Vec<FuncId> = Vec::new();
        for &e in &self.edges {
            let edge = program.edge(e);
            if !fns.contains(&e.func) {
                fns.push(e.func);
            }
            match &edge.op {
                Op::Assign(..) | Op::ArrStore(..) => st.assignments += 1,
                Op::Havoc(_) => st.havocs += 1,
                Op::Assume(_) => st.assumes += 1,
                Op::Call(_) => {
                    st.calls += 1;
                    depth += 1;
                    st.max_call_depth = st.max_call_depth.max(depth);
                }
                Op::Return => {
                    st.returns += 1;
                    depth = depth.saturating_sub(1);
                }
            }
        }
        st.functions_visited = fns.len();
        st
    }
}

/// Aggregate path statistics (see [`Path::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Assignment operations (including array stores).
    pub assignments: usize,
    /// `nondet()` operations.
    pub havocs: usize,
    /// Branch (`assume`) operations.
    pub assumes: usize,
    /// Call edges.
    pub calls: usize,
    /// Return edges.
    pub returns: usize,
    /// Distinct functions whose edges appear on the path.
    pub functions_visited: usize,
    /// Deepest call nesting relative to the path start.
    pub max_call_depth: usize,
}

impl fmt::Display for PathStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} assign, {} nondet, {} branch, {} call/{} return, {} function(s), depth {}",
            self.assignments,
            self.havocs,
            self.assumes,
            self.calls,
            self.returns,
            self.functions_visited,
            self.max_call_depth
        )
    }
}

fn check_edges(program: &Program, edges: &[EdgeId]) -> Result<(), PathError> {
    // Existence.
    for (at, e) in edges.iter().enumerate() {
        let Some(cfa) = program.cfas().get(e.func.index()) else {
            return Err(PathError::UnknownEdge { at });
        };
        if e.idx as usize >= cfa.edges().len() {
            return Err(PathError::UnknownEdge { at });
        }
    }
    // Flow conditions, with an explicit call stack of call positions.
    let mut stack: Vec<usize> = Vec::new();
    for i in 1..edges.len() {
        let prev = program.edge(edges[i - 1]);
        let cur = program.edge(edges[i]);
        match &prev.op {
            Op::Call(f) => {
                stack.push(i - 1);
                let callee = program.cfa(*f);
                if cur.src != callee.entry() {
                    return Err(PathError::CallEntryMismatch { at: i });
                }
            }
            Op::Return => {
                let Some(call_pos) = stack.pop() else {
                    return Err(PathError::UnbalancedReturn { at: i });
                };
                let call_edge = program.edge(edges[call_pos]);
                if cur.src != call_edge.dst {
                    return Err(PathError::ReturnMismatch { at: i });
                }
            }
            _ => {
                if cur.src != prev.dst {
                    return Err(PathError::BrokenFlow {
                        at: i,
                        expected: prev.dst,
                        found: cur.src,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;

    /// Builds the canonical interprocedural example:
    /// `fn f(x){return x;} fn main(){ local a; a = f(1); }`.
    fn prog() -> Program {
        lower(&imp::parse("fn f(x) { return x; } fn main() { local a; a = f(1); }").unwrap())
            .unwrap()
    }

    /// The unique full execution path of `prog()`: main's edges with f's
    /// body spliced in after the call edge.
    fn full_path(p: &Program) -> Vec<EdgeId> {
        let main = p.main();
        let f = p.func_id("f").unwrap();
        let m = |idx| EdgeId { func: main, idx };
        let g = |idx| EdgeId { func: f, idx };
        // main: arg0:=1, call, a:=ret, return ; f: x:=arg0, ret:=x, return
        vec![m(0), m(1), g(0), g(1), g(2), m(2), m(3)]
    }

    #[test]
    fn accepts_valid_interprocedural_path() {
        let p = prog();
        let path = Path::new(&p, full_path(&p)).unwrap();
        assert_eq!(path.len(), 7);
    }

    #[test]
    fn call_origins_match_paper_definition() {
        let p = prog();
        let path = Path::new(&p, full_path(&p)).unwrap();
        let co = path.call_origins(&p);
        // positions: 0 arg0:=1 (main), 1 call (main), 2..4 inside f,
        // 5 a:=ret (main, after return), 6 return (main).
        assert_eq!(co, vec![None, None, Some(1), Some(1), Some(1), None, None]);
    }

    #[test]
    fn rejects_broken_flow() {
        let p = prog();
        let main = p.main();
        let bad = vec![EdgeId { func: main, idx: 0 }, EdgeId { func: main, idx: 3 }];
        assert!(matches!(
            Path::new(&p, bad),
            Err(PathError::BrokenFlow { at: 1, .. })
        ));
    }

    #[test]
    fn rejects_wrong_callee_entry() {
        let p = prog();
        let main = p.main();
        let f = p.func_id("f").unwrap();
        // Jump into the middle of f after the call edge.
        let bad = vec![
            EdgeId { func: main, idx: 0 },
            EdgeId { func: main, idx: 1 },
            EdgeId { func: f, idx: 1 },
        ];
        assert!(matches!(
            Path::new(&p, bad),
            Err(PathError::CallEntryMismatch { at: 2 })
        ));
    }

    #[test]
    fn rejects_unknown_edge() {
        let p = prog();
        let bad = vec![EdgeId {
            func: p.main(),
            idx: 99,
        }];
        assert!(matches!(
            Path::new(&p, bad),
            Err(PathError::UnknownEdge { at: 0 })
        ));
    }

    #[test]
    fn rejects_return_to_wrong_continuation() {
        let p = prog();
        let main = p.main();
        let f = p.func_id("f").unwrap();
        let m = |idx| EdgeId { func: main, idx };
        let g = |idx| EdgeId { func: f, idx };
        // After f's return, skip main's a:=ret edge and jump to main's
        // return edge — not a successor of the call edge.
        let bad = vec![m(0), m(1), g(0), g(1), g(2), m(3)];
        assert!(matches!(
            Path::new(&p, bad),
            Err(PathError::ReturnMismatch { at: 5 })
        ));
    }

    #[test]
    fn trace_and_counts() {
        let p = prog();
        let path = Path::new(&p, full_path(&p)).unwrap();
        assert_eq!(path.trace(&p).len(), 7);
        assert_eq!(path.n_branches(&p), 0);
        assert_eq!(path.source(&p), Some(p.cfa(p.main()).entry()));
        assert_eq!(path.target(&p), Some(p.cfa(p.main()).exit()));
        let st = path.stats(&p);
        assert_eq!(st.calls, 1);
        assert_eq!(st.returns, 2, "f's return plus main's");
        assert_eq!(st.functions_visited, 2);
        assert_eq!(st.max_call_depth, 1);
        assert_eq!(st.assignments, 4, "arg0:=1, x:=arg0, ret:=x, a:=ret");
        assert!(format!("{st}").contains("2 function(s)"));
    }
}
