//! A hand-rolled JSON value, emitter, and parser.
//!
//! The workspace builds offline (no serde), so every machine-readable
//! artifact — certificate trace files, span dumps, `BENCH_*.json`
//! reports — goes through this one module. Numbers are kept as either
//! exact integers ([`Json::Num`]) or floats ([`Json::Float`]); the float
//! emitter always writes a decimal point so a value round-trips into the
//! same variant it was emitted from.

use std::fmt::Write as _;

/// A parse error, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no decimal point or exponent in the source text).
    Num(i64),
    /// A float. Emitted with a decimal point so it reparses as `Float`;
    /// non-finite values emit as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving field order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes into `out` (compact, no whitespace).
    pub fn emit(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if !f.is_finite() {
                    out.push_str("null");
                } else {
                    let start = out.len();
                    let _ = write!(out, "{f}");
                    // `{}` prints 2.0 as "2": force a decimal point so the
                    // value reparses as Float, not Num.
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                }
            }
            Json::Str(s) => emit_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.emit(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_str(k, out);
                    out.push(':');
                    v.emit(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes into a fresh string.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out);
        out
    }

    /// Looks up a field of an object; `None` for other variants.
    pub fn field<'a>(&'a self, name: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value of a `Num`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value of a `Num` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string value of a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items of an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let doc = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing data after the document");
        }
        Ok(doc)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(Json::Bool(false))
            }
            Some(b'n') if self.bytes[self.pos..].starts_with(b"null") => {
                self.pos += 4;
                Ok(Json::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        if float {
            match text.parse::<f64>() {
                Ok(f) if f.is_finite() => Ok(Json::Float(f)),
                _ => self.err("malformed float"),
            }
        } else {
            match text.parse::<i64>() {
                Ok(n) => Ok(Json::Num(n)),
                Err(_) => self.err("integer out of range"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) != Some(&b'"') {
            return self.err("expected a string");
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            message: "invalid UTF-8".to_owned(),
                            at: self.pos,
                        })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for j in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0),
            Json::Num(-42),
            Json::Num(i64::MAX),
            Json::Float(0.5),
            Json::Float(2.0),
            Json::Float(-1.25e-9),
            Json::Str("π \"quoted\"\n\t\u{1}".into()),
        ] {
            let back = Json::parse(&j.to_text()).unwrap();
            assert_eq!(back, j, "text: {}", j.to_text());
        }
    }

    #[test]
    fn floats_stay_floats_and_ints_stay_ints() {
        assert_eq!(Json::parse("2.0"), Ok(Json::Float(2.0)));
        assert_eq!(Json::parse("2"), Ok(Json::Num(2)));
        assert_eq!(Json::parse("1e3"), Ok(Json::Float(1000.0)));
        assert_eq!(Json::Float(2.0).to_text(), "2.0");
    }

    #[test]
    fn nested_document_roundtrips() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Num(1), Json::Null])),
            (
                "b".into(),
                Json::Obj(vec![("x".into(), Json::Float(0.125))]),
            ),
            ("".into(), Json::Str(String::new())),
        ]);
        assert_eq!(Json::parse(&doc.to_text()).unwrap(), doc);
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "nope",
            "tru",
            "1.2.3",
            "{\"a\"}",
            "[]x",
            "\"\\q\"",
            "99999999999999999999",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn nonfinite_floats_emit_null() {
        assert_eq!(Json::Float(f64::NAN).to_text(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_text(), "null");
    }
}
