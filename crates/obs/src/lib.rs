//! `obs` — zero-dependency observability: hierarchical timing spans and
//! a process-wide metrics registry.
//!
//! Everything here is off by default and costs one relaxed atomic load
//! per call site while disabled, so instrumentation can stay in the hot
//! paths permanently (`DESIGN.md` §8 documents the measured bound).
//! Enabling is a process-wide switch: [`set_enabled`].
//!
//! # Spans
//!
//! A [`span!`] opens a named region timed with the monotonic clock and
//! closes it when the guard drops — including during a panic unwind, so
//! driver-isolated faults never leave the span stack wedged. Spans nest
//! per thread (each thread owns its stack; completed records are merged
//! into one process-wide buffer whenever a thread's root span closes)
//! and are drained with [`take_spans`].
//!
//! # Metrics
//!
//! [`counter`] and [`histogram`] return `'static` handles registered by
//! name on first use. Counters are monotonic sums over relaxed atomics,
//! which makes them *deterministic across worker counts*: the same
//! workload yields the same totals under `--jobs 1` and `--jobs 4`.
//!
//! # Worked example
//!
//! ```
//! obs::set_enabled(true);
//! obs::reset();
//!
//! {
//!     let _outer = obs::span!("check");
//!     {
//!         let _inner = obs::span!("solve", "round {}", 1);
//!         obs::counter("lia.checks").inc();
//!     }
//! } // guards drop: both spans close, root flushes to the shared buffer
//!
//! let spans = obs::take_spans();
//! assert_eq!(spans.len(), 2);
//! let solve = spans.iter().find(|s| s.name == "solve").unwrap();
//! let check = spans.iter().find(|s| s.name == "check").unwrap();
//! assert_eq!(solve.parent, Some(check.id));
//! assert_eq!(solve.detail.as_deref(), Some("round 1"));
//! assert_eq!(obs::counters()["lia.checks"], 1);
//! obs::set_enabled(false);
//! ```

pub mod json;
pub mod telemetry;

use json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// The process-wide switch
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the whole layer on or off (spans *and* metrics).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether observability is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Locks a mutex, recovering from poison: a panic inside an instrumented
/// region (driver fault injection does this on purpose) must not take
/// the telemetry down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique id.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// The span name (taxonomy in `DESIGN.md` §8).
    pub name: String,
    /// Optional free-form detail (`span!("solve", "round {r}")`).
    pub detail: Option<String>,
    /// Nesting depth on its thread (roots are 0).
    pub depth: u32,
    /// Start offset from the process epoch, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration, in microseconds.
    pub dur_us: u64,
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    detail: Option<String>,
    depth: u32,
    start: Instant,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static COMPLETED: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
    static LOCAL_DONE: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
    static CAPTURE: RefCell<Option<Vec<SpanRecord>>> = const { RefCell::new(None) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process epoch (the same clock span timestamps
/// use, so time-series snapshots line up with span `start_us` values).
pub fn now_us() -> u64 {
    Instant::now().duration_since(epoch()).as_micros() as u64
}

/// Closes its span on drop. Obtain via [`span()`] or the [`span!`]
/// macro; hold it for the duration of the region (`let _guard = …`).
#[must_use = "a span closes when this guard drops; binding it to `_` closes it immediately"]
pub struct SpanGuard {
    armed: bool,
}

/// Opens a span named `name` (no detail).
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    open(name, None)
}

/// Opens a span with a lazily-built detail string (only evaluated while
/// enabled).
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    open(name, Some(detail()))
}

fn open(name: &'static str, detail: Option<String>) -> SpanGuard {
    let start = Instant::now();
    epoch(); // pin the epoch no later than the first span
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().map(|o| o.id);
        let depth = s.len() as u32;
        s.push(OpenSpan {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            detail,
            depth,
            start,
        });
    });
    SpanGuard { armed: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = Instant::now();
        let root_closed = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let Some(open) = s.pop() else { return false };
            let rec = SpanRecord {
                id: open.id,
                parent: open.parent,
                name: open.name.to_owned(),
                detail: open.detail,
                depth: open.depth,
                start_us: open.start.duration_since(epoch()).as_micros() as u64,
                dur_us: end.duration_since(open.start).as_micros() as u64,
            };
            LOCAL_DONE.with(|d| d.borrow_mut().push(rec));
            s.is_empty()
        });
        if root_closed {
            let drained: Vec<SpanRecord> = LOCAL_DONE.with(|d| d.borrow_mut().drain(..).collect());
            CAPTURE.with(|c| {
                if let Some(buf) = c.borrow_mut().as_mut() {
                    buf.extend(drained.iter().cloned());
                }
            });
            lock(&COMPLETED).extend(drained);
        }
    }
}

/// Runs `f` and returns, alongside its result, a copy of every span
/// tree that *closed at the root* on this thread during the call. The
/// spans still flow into the process-wide buffer ([`take_spans`] sees
/// them too) — capture is a tee, not a redirect.
///
/// This is how the server retains a single request's span tree for
/// tail-sampled slow-request tracing: the worker thread has no span
/// open outside the request, so every root that closes inside `f`
/// belongs to it. If a span is already open on this thread when
/// `capture` is called, nothing is captured (the root closes later,
/// outside the window). Nested captures: the inner capture wins —
/// roots closing inside it are not also seen by the outer one.
///
/// While disabled, no spans are recorded, so the captured vector is
/// empty. If `f` panics, the capture window is unwound cleanly and the
/// partial capture is discarded.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    struct Window {
        prev: Option<Vec<SpanRecord>>,
    }
    impl Window {
        fn open() -> Self {
            Window {
                prev: CAPTURE.with(|c| c.borrow_mut().replace(Vec::new())),
            }
        }
        fn close(mut self) -> Vec<SpanRecord> {
            let captured = CAPTURE.with(|c| {
                let mut slot = c.borrow_mut();
                std::mem::replace(&mut *slot, self.prev.take())
            });
            std::mem::forget(self); // prev already restored; skip Drop
            captured.unwrap_or_default()
        }
    }
    impl Drop for Window {
        fn drop(&mut self) {
            // Panic unwind: restore the outer window, drop the partial
            // capture.
            CAPTURE.with(|c| *c.borrow_mut() = self.prev.take());
        }
    }
    let window = Window::open();
    let result = f();
    let captured = window.close();
    (result, captured)
}

/// Opens a hierarchical span: `span!("name")` or
/// `span!("name", "detail {}", arg)`. Returns a [`SpanGuard`]; the span
/// closes when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($arg:tt)+) => {
        $crate::span_with($name, || format!($($arg)+))
    };
}

/// Drains every completed span merged so far (all threads' closed root
/// trees), oldest first.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *lock(&COMPLETED))
}

/// Per-name aggregate over a batch of spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStat {
    /// Number of spans with this name.
    pub count: u64,
    /// Summed wall time, in microseconds.
    pub total_us: u64,
    /// Summed *self* time (total minus time in child spans).
    pub self_us: u64,
}

/// Aggregates spans by name into total and self time — the `--stats`
/// phase table.
pub fn phase_totals(spans: &[SpanRecord]) -> BTreeMap<String, PhaseStat> {
    let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_time.entry(p).or_default() += s.dur_us;
        }
    }
    let mut out: BTreeMap<String, PhaseStat> = BTreeMap::new();
    for s in spans {
        let stat = out.entry(s.name.clone()).or_default();
        stat.count += 1;
        stat.total_us += s.dur_us;
        stat.self_us += s
            .dur_us
            .saturating_sub(child_time.get(&s.id).copied().unwrap_or(0));
    }
    out
}

/// Renders spans as a `pathslice-spans/v1` JSON document.
pub fn spans_to_json(spans: &[SpanRecord]) -> String {
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("pathslice-spans/v1".into())),
        (
            "spans".into(),
            Json::Arr(
                spans
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("id".into(), Json::Num(s.id as i64)),
                            (
                                "parent".into(),
                                s.parent.map_or(Json::Null, |p| Json::Num(p as i64)),
                            ),
                            ("name".into(), Json::Str(s.name.clone())),
                            (
                                "detail".into(),
                                s.detail
                                    .as_ref()
                                    .map_or(Json::Null, |d| Json::Str(d.clone())),
                            ),
                            ("depth".into(), Json::Num(s.depth as i64)),
                            ("start_us".into(), Json::Num(s.start_us as i64)),
                            ("dur_us".into(), Json::Num(s.dur_us as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut out = doc.to_text();
    out.push('\n');
    out
}

/// Parses a `pathslice-spans/v1` document back into records.
///
/// # Errors
///
/// [`json::JsonError`] on malformed JSON or a schema mismatch.
pub fn spans_from_json(text: &str) -> Result<Vec<SpanRecord>, json::JsonError> {
    let schema_err = |message: &str| json::JsonError {
        message: message.to_owned(),
        at: 0,
    };
    let doc = Json::parse(text)?;
    if doc.field("schema").and_then(Json::as_str) != Some("pathslice-spans/v1") {
        return Err(schema_err("not a pathslice-spans/v1 document"));
    }
    doc.field("spans")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("missing `spans` array"))?
        .iter()
        .map(|s| {
            let num = |f: &str| {
                s.field(f)
                    .and_then(Json::as_i64)
                    .ok_or_else(|| schema_err(&format!("missing numeric span field `{f}`")))
            };
            Ok(SpanRecord {
                id: num("id")? as u64,
                parent: match s.field("parent") {
                    Some(Json::Num(p)) => Some(*p as u64),
                    _ => None,
                },
                name: s
                    .field("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| schema_err("missing span field `name`"))?
                    .to_owned(),
                detail: s.field("detail").and_then(Json::as_str).map(str::to_owned),
                depth: num("depth")? as u32,
                start_us: num("start_us")? as u64,
                dur_us: num("dur_us")? as u64,
            })
        })
        .collect()
}

/// Drains every completed span and writes them to `path` as a
/// `pathslice-spans/v1` document, returning how many were written.
/// This is the single flush path shared by `pathslice check`,
/// `pathslice serve`, and the bench binaries (their SIGINT epilogues
/// all funnel here instead of re-implementing the dump).
///
/// # Errors
///
/// The I/O error rendered as a string, with the spans lost (they were
/// already drained) — callers treat this as a warning, not a crash.
pub fn flush_spans_to(path: &str) -> Result<usize, String> {
    let spans = take_spans();
    write_spans_to(path, &spans)?;
    Ok(spans.len())
}

/// Writes an already-drained span batch to `path` as a
/// `pathslice-spans/v1` document. Split out of [`flush_spans_to`] for
/// callers that drained once and share the batch between several
/// epilogues (stats table, stats JSON, trace dump).
///
/// # Errors
///
/// The I/O error rendered as a string.
pub fn write_spans_to(path: &str, spans: &[SpanRecord]) -> Result<(), String> {
    std::fs::write(path, spans_to_json(spans))
        .map_err(|e| format!("cannot write spans to {path}: {e}"))
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// A monotonic counter. Obtain via [`counter`]; hoist the handle out of
/// hot loops (or batch with [`Counter::add`]) rather than re-looking it
/// up per iteration.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one (no-op while disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` samples: bucket `k` counts values
/// in `[2^(k-1), 2^k)`, bucket 0 counts zeros.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(inclusive upper bound, count)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl Histogram {
    /// An unregistered, caller-owned histogram. Unlike [`histogram`]
    /// handles this is scoped to its owner — a co-resident batch run
    /// observing into the global registry cannot touch it — which is
    /// what the server uses for its per-request latency metrics.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (no-op while disabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.record(v);
    }

    /// Records one sample regardless of the process-wide switch. Owned
    /// histograms (telemetry the owner always wants, e.g. the server's
    /// latency metrics) use this; registered ones go through
    /// [`Histogram::observe`].
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copies out the non-empty buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(k, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| {
                        // Subtract in u128: bucket 64 (samples above
                        // 2^63) has hi = 2^64 - 1 = u64::MAX, and
                        // `(1u128 << 64) as u64 - 1` would underflow.
                        let hi = ((1u128 << k) - 1) as u64;
                        (hi, n)
                    })
                })
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSnapshot {
    /// An estimate of the `q`-quantile (`0.0 ..= 1.0`): the inclusive
    /// upper bound of the log₂ bucket holding the `⌈q·count⌉`-th
    /// smallest sample. Bucket resolution bounds the error — the true
    /// value lies within a factor of two below the estimate. Returns 0
    /// for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(hi, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return hi;
            }
        }
        self.buckets.last().map_or(0, |&(hi, _)| hi)
    }

    /// An estimate of the `q`-quantile that interpolates *within* the
    /// log₂ bucket holding the `⌈q·count⌉`-th smallest sample, instead
    /// of reporting the bucket's upper bound like
    /// [`HistogramSnapshot::quantile`]. The upper-bound form is an
    /// honest "no worse than" ceiling, but quoted as a latency
    /// percentile it reads absurdly — a p50 of `65535` µs when every
    /// sample sits near the bottom of the `[32768, 65536)` bucket.
    /// Here the rank's position among the bucket's samples places the
    /// estimate linearly between the bucket's inclusive bounds, so the
    /// result is always a value the bucket could actually contain.
    /// Returns 0 for an empty snapshot.
    pub fn quantile_interpolated(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(hi, n) in &self.buckets {
            if seen + n >= rank {
                // Bucket k ≥ 1 spans [2^(k-1), 2^k): lo = hi/2 + 1.
                // Bucket 0 holds only zeros (hi = 0, lo = 0). u128
                // arithmetic keeps the top bucket (hi = u64::MAX) from
                // overflowing.
                let lo = if hi == 0 { 0 } else { hi / 2 + 1 };
                let pos = rank - seen; // 1-based rank within the bucket
                let span = (hi - lo) as u128;
                return lo + (span * pos as u128 / n as u128) as u64;
            }
            seen += n;
        }
        self.buckets.last().map_or(0, |&(hi, _)| hi)
    }

    /// Folds `other` into `self` bucket-by-bucket. Merging is
    /// commutative and associative, so combining per-worker snapshots
    /// yields the same result under any job count or merge order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(hi, n) in &other.buckets {
            *merged.entry(hi).or_default() += n;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// Renders as `{"count":…,"sum":…,"buckets":[[le,n],…]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as i64)),
            ("sum".into(), Json::Num(self.sum as i64)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(hi, n)| Json::Arr(vec![Json::Num(hi as i64), Json::Num(n as i64)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the [`HistogramSnapshot::to_json`] shape back.
    ///
    /// # Errors
    ///
    /// [`json::JsonError`] when a field is missing or mistyped.
    pub fn from_json(v: &Json) -> Result<HistogramSnapshot, json::JsonError> {
        let bad = |message: &str| json::JsonError {
            message: message.to_owned(),
            at: 0,
        };
        let num = |f: &str| {
            v.field(f)
                .and_then(Json::as_i64)
                .ok_or_else(|| bad(&format!("histogram snapshot: missing `{f}`")))
        };
        let buckets = v
            .field("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("histogram snapshot: missing `buckets`"))?
            .iter()
            .map(|pair| match pair.as_arr() {
                Some([le, n]) => match (le.as_i64(), n.as_i64()) {
                    (Some(le), Some(n)) => Ok((le as u64, n as u64)),
                    _ => Err(bad("histogram bucket: non-numeric entry")),
                },
                _ => Err(bad("histogram bucket: expected a [le, n] pair")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HistogramSnapshot {
            count: num("count")? as u64,
            sum: num("sum")? as u64,
            buckets,
        })
    }
}

type CounterMap = BTreeMap<&'static str, &'static Counter>;
type HistogramMap = BTreeMap<&'static str, &'static Histogram>;

fn counter_registry() -> &'static Mutex<CounterMap> {
    static REG: OnceLock<Mutex<CounterMap>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn histogram_registry() -> &'static Mutex<HistogramMap> {
    static REG: OnceLock<Mutex<HistogramMap>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The counter registered under `name` (created on first use; the
/// handle is `'static`, so call sites can hoist it out of loops).
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = lock(counter_registry());
    if let Some(c) = reg.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::default());
    reg.insert(name, c);
    c
}

/// The histogram registered under `name` (created on first use).
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = lock(histogram_registry());
    if let Some(h) = reg.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram {
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
    }));
    reg.insert(name, h);
    h
}

/// A snapshot of every registered counter (zeros included).
pub fn counters() -> BTreeMap<&'static str, u64> {
    lock(counter_registry())
        .iter()
        .map(|(&k, c)| (k, c.get()))
        .collect()
}

/// A snapshot of every registered histogram.
pub fn histograms() -> BTreeMap<&'static str, HistogramSnapshot> {
    lock(histogram_registry())
        .iter()
        .map(|(&k, h)| (k, h.snapshot()))
        .collect()
}

/// Zeroes all counters and histograms and discards buffered spans
/// (registrations survive). Call between measured runs.
pub fn reset() {
    for c in lock(counter_registry()).values() {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in lock(histogram_registry()).values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
    }
    lock(&COMPLETED).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One process-wide lock: these tests mutate the global switch and
    /// registries, so they must not interleave.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock(&LOCK)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        {
            let _s = span!("never");
            counter("never.count").inc();
        }
        assert!(take_spans().is_empty());
        assert_eq!(counter("never.count").get(), 0);
    }

    #[test]
    fn spans_nest_and_merge_across_threads() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _root = span!("root");
            let _mid = span!("mid", "iter {}", 7);
            let _leaf = span!("leaf");
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _worker = span!("worker");
            });
        });
        let spans = take_spans();
        set_enabled(false);
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("mid").parent, Some(by_name("root").id));
        assert_eq!(by_name("leaf").parent, Some(by_name("mid").id));
        assert_eq!(by_name("leaf").depth, 2);
        assert_eq!(by_name("mid").detail.as_deref(), Some("iter 7"));
        assert_eq!(by_name("worker").parent, None, "threads own their trees");
    }

    #[test]
    fn spans_close_during_panic_unwind() {
        let _g = guard();
        set_enabled(true);
        reset();
        let caught = std::panic::catch_unwind(|| {
            let _root = span!("panicking-root");
            let _inner = span!("panicking-inner");
            panic!("boom");
        });
        assert!(caught.is_err());
        let spans = take_spans();
        set_enabled(false);
        assert_eq!(spans.len(), 2, "both guards closed during unwind");
        assert!(spans.iter().all(|s| s.name.starts_with("panicking-")));
        // The stack fully unwound: a fresh root is again a root.
        set_enabled(true);
        {
            let _s = span!("after");
        }
        let after = take_spans();
        set_enabled(false);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].depth, 0);
        assert_eq!(after[0].parent, None);
    }

    #[test]
    fn phase_totals_attribute_self_time() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "outer".into(),
                detail: None,
                depth: 0,
                start_us: 0,
                dur_us: 100,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "inner".into(),
                detail: None,
                depth: 1,
                start_us: 10,
                dur_us: 60,
            },
        ];
        let totals = phase_totals(&spans);
        assert_eq!(totals["outer"].total_us, 100);
        assert_eq!(totals["outer"].self_us, 40);
        assert_eq!(totals["inner"].self_us, 60);
    }

    #[test]
    fn span_json_roundtrips() {
        let spans = vec![
            SpanRecord {
                id: 3,
                parent: None,
                name: "check".into(),
                detail: Some("cluster \"main\"\n".into()),
                depth: 0,
                start_us: 12,
                dur_us: 3456,
            },
            SpanRecord {
                id: 4,
                parent: Some(3),
                name: "solve".into(),
                detail: None,
                depth: 1,
                start_us: 20,
                dur_us: 100,
            },
        ];
        let text = spans_to_json(&spans);
        assert_eq!(spans_from_json(&text).unwrap(), spans);
        assert!(spans_from_json("{\"schema\":\"other\"}").is_err());
    }

    #[test]
    fn counters_and_histograms_register_and_reset() {
        let _g = guard();
        set_enabled(true);
        reset();
        let c = counter("test.counter");
        c.add(5);
        c.inc();
        assert_eq!(counters()["test.counter"], 6);
        let h = histogram("test.hist");
        h.observe(0);
        h.observe(3);
        h.observe(1024);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 1027);
        assert_eq!(snap.buckets, vec![(0, 1), (3, 1), (2047, 1)]);
        reset();
        set_enabled(false);
        assert_eq!(counters()["test.counter"], 0);
        assert_eq!(histograms()["test.hist"].count, 0);
    }

    #[test]
    fn capture_tees_request_trees_without_stealing_them() {
        let _g = guard();
        set_enabled(true);
        reset();
        let ((), captured) = capture(|| {
            let _root = span!("request");
            let _child = span!("attempt");
        });
        assert_eq!(captured.len(), 2);
        let root = captured.iter().find(|s| s.name == "request").unwrap();
        let child = captured.iter().find(|s| s.name == "attempt").unwrap();
        assert_eq!(child.parent, Some(root.id));
        // Tee, not redirect: the global buffer saw the same spans.
        assert_eq!(take_spans().len(), 2);

        // A panic inside the window discards the partial capture but
        // leaves the thread reusable.
        let _ = std::panic::catch_unwind(|| {
            capture(|| {
                let _s = span!("doomed");
                panic!("boom");
            })
        });
        let ((), after) = capture(|| {
            let _s = span!("clean");
        });
        set_enabled(false);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].name, "clean");
    }

    #[test]
    fn quantiles_and_merge_are_bucket_exact() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        // Rank 50 lands in bucket [32,64); rank 95 and 99 in [64,128).
        assert_eq!(snap.quantile(0.5), 63);
        assert_eq!(snap.quantile(0.95), 127);
        assert_eq!(snap.quantile(0.99), 127);
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);

        let other = Histogram::new();
        other.record(0);
        other.record(40);
        let mut merged = snap.clone();
        merged.merge(&other.snapshot());
        assert_eq!(merged.count, 102);
        assert_eq!(merged.sum, 5050 + 40);
        let in_bucket = |s: &HistogramSnapshot, hi: u64| {
            s.buckets.iter().find(|&&(b, _)| b == hi).map(|&(_, n)| n)
        };
        assert_eq!(in_bucket(&merged, 0), Some(1));
        assert_eq!(in_bucket(&merged, 63), Some(33)); // 32..=63 plus the extra 40

        // JSON round-trip.
        let back = HistogramSnapshot::from_json(&merged.to_json()).unwrap();
        assert_eq!(back, merged);
    }

    #[test]
    fn counter_sums_are_thread_deterministic() {
        let _g = guard();
        set_enabled(true);
        reset();
        let c = counter("test.par");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        set_enabled(false);
        assert_eq!(c.get(), 4000);
    }
}
