//! Continuous telemetry: a fixed-size ring of periodic metric
//! snapshots with derived deltas, a Prometheus-style text renderer,
//! and a spans→collapsed-stack exporter for flamegraphs.
//!
//! The ring is the time-series backbone behind the server's `metrics`
//! wire request (`DESIGN.md` §10): a sampler pushes a
//! [`MetricsSnapshot`] every interval, the ring keeps the last `cap`
//! of them, and [`MetricsRing::deltas`] turns adjacent snapshots into
//! per-interval rates. Counters here are plain owned maps — nothing in
//! this module touches the process-global registry, so a co-resident
//! batch run cannot pollute a server's series.

use crate::json::Json;
use crate::{HistogramSnapshot, SpanRecord};
use std::collections::{BTreeMap, VecDeque};

/// One periodic observation: every metric the owner cares about, taken
/// at a single point in time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// When the snapshot was taken, microseconds since the process
    /// epoch (same clock as span `start_us`).
    pub at_us: u64,
    /// Monotonic counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The difference between two adjacent snapshots: what happened during
/// one sampling interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsDelta {
    /// Start of the interval (`at_us` of the earlier snapshot).
    pub from_us: u64,
    /// End of the interval (`at_us` of the later snapshot).
    pub to_us: u64,
    /// Per-counter increase over the interval (saturating: a counter
    /// reset mid-flight reads as zero, not as a huge unsigned wrap).
    pub counters: BTreeMap<String, u64>,
}

/// A bounded ring of [`MetricsSnapshot`]s, oldest evicted first.
#[derive(Debug)]
pub struct MetricsRing {
    cap: usize,
    ring: VecDeque<MetricsSnapshot>,
}

impl MetricsRing {
    /// An empty ring holding at most `cap` snapshots (`cap` ≥ 2 so at
    /// least one delta is derivable; smaller values are bumped).
    pub fn new(cap: usize) -> MetricsRing {
        MetricsRing {
            cap: cap.max(2),
            ring: VecDeque::new(),
        }
    }

    /// Appends a snapshot, evicting the oldest once full.
    pub fn push(&mut self, snap: MetricsSnapshot) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(snap);
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no snapshots yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = &MetricsSnapshot> {
        self.ring.iter()
    }

    /// Deltas between each adjacent pair of snapshots, oldest first
    /// (`len() - 1` of them).
    pub fn deltas(&self) -> Vec<MetricsDelta> {
        self.ring
            .iter()
            .zip(self.ring.iter().skip(1))
            .map(|(a, b)| MetricsDelta {
                from_us: a.at_us,
                to_us: b.at_us,
                counters: b
                    .counters
                    .iter()
                    .map(|(k, &v)| {
                        let before = a.counters.get(k).copied().unwrap_or(0);
                        (k.clone(), v.saturating_sub(before))
                    })
                    .collect(),
            })
            .collect()
    }

    /// Renders the whole series as a `pathslice-metrics/v1` document:
    /// `{"schema":…,"snapshots":[…],"deltas":[…]}`.
    pub fn to_json(&self) -> Json {
        let counters_json = |m: &BTreeMap<String, u64>| {
            Json::Obj(
                m.iter()
                    .map(|(k, &v)| (k.clone(), Json::Num(v as i64)))
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("schema".into(), Json::Str("pathslice-metrics/v1".into())),
            (
                "snapshots".into(),
                Json::Arr(
                    self.snapshots()
                        .map(|s| {
                            Json::Obj(vec![
                                ("at_us".into(), Json::Num(s.at_us as i64)),
                                ("counters".into(), counters_json(&s.counters)),
                                (
                                    "histograms".into(),
                                    Json::Obj(
                                        s.histograms
                                            .iter()
                                            .map(|(k, h)| (k.clone(), h.to_json()))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "deltas".into(),
                Json::Arr(
                    self.deltas()
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("from_us".into(), Json::Num(d.from_us as i64)),
                                ("to_us".into(), Json::Num(d.to_us as i64)),
                                ("counters".into(), counters_json(&d.counters)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Maps a dotted metric name onto the Prometheus grammar:
/// `pathslice_` prefix, every byte outside `[a-zA-Z0-9_]` folded to
/// `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("pathslice_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders counters and histograms in the Prometheus text exposition
/// format (one `# TYPE` line per family; histogram buckets cumulative
/// with a closing `+Inf`). Names are dotted metric names as used in
/// the rest of the codebase (`server.requests`) and are mangled via
/// a `pathslice_` prefix plus `_` folding.
pub fn prometheus_text(
    counters: &BTreeMap<String, u64>,
    histograms: &BTreeMap<String, HistogramSnapshot>,
) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p} {value}\n"));
    }
    for (name, h) in histograms {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} histogram\n"));
        let mut cumulative = 0u64;
        for &(le, n) in &h.buckets {
            cumulative += n;
            out.push_str(&format!("{p}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{p}_bucket{{le=\"+Inf\"}} {c}\n{p}_sum {s}\n{p}_count {c}\n",
            c = h.count,
            s = h.sum,
        ));
    }
    out
}

/// Folds a batch of spans into collapsed-stack lines
/// (`root;child;leaf <self_us>`), the input format flamegraph tools
/// eat. Self time (duration minus direct children) is attributed to
/// each span's full ancestor path; identical paths aggregate. Lines
/// are sorted (BTreeMap order), so output is deterministic for a given
/// span batch.
pub fn spans_to_collapsed(spans: &[SpanRecord]) -> String {
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_time.entry(p).or_default() += s.dur_us;
        }
    }
    let clean = |name: &str| name.replace([';', ' '], "_");
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let mut stack = vec![clean(&s.name)];
        let mut cursor = s.parent;
        while let Some(pid) = cursor {
            // A parent outside the batch (partial drain) truncates the
            // path rather than erroring.
            let Some(parent) = by_id.get(&pid) else { break };
            stack.push(clean(&parent.name));
            cursor = parent.parent;
        }
        stack.reverse();
        let self_us = s
            .dur_us
            .saturating_sub(child_time.get(&s.id).copied().unwrap_or(0));
        *agg.entry(stack.join(";")).or_default() += self_us;
    }
    let mut out = String::new();
    for (stack, us) in agg {
        out.push_str(&format!("{stack} {us}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_us: u64, reqs: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            at_us,
            counters: BTreeMap::from([("server.requests".to_owned(), reqs)]),
            histograms: BTreeMap::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_derives_deltas() {
        let mut ring = MetricsRing::new(3);
        for (t, v) in [(10, 0), (20, 4), (30, 9), (40, 9)] {
            ring.push(snap(t, v));
        }
        assert_eq!(ring.len(), 3, "cap evicts the oldest");
        let deltas = ring.deltas();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].counters["server.requests"], 5);
        assert_eq!(deltas[1].counters["server.requests"], 0);
        assert_eq!((deltas[0].from_us, deltas[0].to_us), (20, 30));
        // A counter that resets mid-series saturates instead of
        // wrapping.
        ring.push(snap(50, 2));
        assert_eq!(ring.deltas().last().unwrap().counters["server.requests"], 0);
    }

    #[test]
    fn ring_json_has_schema_and_both_sections() {
        let mut ring = MetricsRing::new(4);
        ring.push(snap(1, 1));
        ring.push(snap(2, 3));
        let doc = ring.to_json();
        assert_eq!(
            doc.field("schema").and_then(Json::as_str),
            Some("pathslice-metrics/v1")
        );
        assert_eq!(
            doc.field("snapshots").and_then(Json::as_arr).unwrap().len(),
            2
        );
        assert_eq!(doc.field("deltas").and_then(Json::as_arr).unwrap().len(), 1);
        // The document reparses through the same hand-rolled parser.
        Json::parse(&doc.to_text()).expect("exposition JSON parses");
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let h = crate::Histogram::new();
        for v in [0, 3, 3, 900] {
            h.record(v);
        }
        let counters = BTreeMap::from([("server.requests".to_owned(), 7u64)]);
        let hists = BTreeMap::from([("server.request_us".to_owned(), h.snapshot())]);
        let text = prometheus_text(&counters, &hists);
        assert!(text.contains("# TYPE pathslice_server_requests counter"));
        assert!(text.contains("pathslice_server_requests 7"));
        assert!(text.contains("# TYPE pathslice_server_request_us histogram"));
        // Buckets are cumulative and close with +Inf == count.
        assert!(text.contains("pathslice_server_request_us_bucket{le=\"0\"} 1"));
        assert!(text.contains("pathslice_server_request_us_bucket{le=\"3\"} 3"));
        assert!(text.contains("pathslice_server_request_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("pathslice_server_request_us_count 4"));
        assert!(text.contains("pathslice_server_request_us_sum 906"));
    }

    #[test]
    fn collapsed_stacks_attribute_self_time_along_paths() {
        let rec = |id, parent, name: &str, dur_us| SpanRecord {
            id,
            parent,
            name: name.into(),
            detail: None,
            depth: 0,
            start_us: 0,
            dur_us,
        };
        let spans = vec![
            rec(1, None, "request", 100),
            rec(2, Some(1), "attempt", 60),
            rec(3, Some(2), "reach", 25),
            rec(4, Some(2), "reach", 15),
        ];
        let folded = spans_to_collapsed(&spans);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "request 40",
                "request;attempt 20",
                "request;attempt;reach 40",
            ]
        );
    }
}
