//! Multi-node verification fabric: a router that places requests on a
//! fleet of `pathslice serve` nodes by consistent hashing.
//!
//! The router accepts both wire revisions downstream and speaks
//! `pathslice-wire/v2` upstream for its own traffic (health probes). A
//! client connects to it exactly as it would to a single daemon, under
//! `pathslice-wire/v1` or `/v2` per frame (`docs/WIRE.md`); each check
//! frame is parsed just enough to derive the program's *content key*
//! (the same key the analysis and verdict caches use), then relayed
//! byte-for-byte to the ring owner of that key — so repeated (or
//! reformatted) submissions of one program always land on the node
//! that already holds its warm session and journaled verdict, and the
//! relayed frame carries the client's own schema marker, so the
//! backend answers under the revision the client asked for. The
//! backend's response line is relayed back verbatim: a fabric answer
//! is byte-identical to the single-node answer. Frames the router
//! answers itself (telemetry ops, exhaustion sheds) are serialized
//! under the requesting frame's revision.
//!
//! Failure handling is "walk the ring": a member that refuses
//! connections, dies mid-request, or answers `overloaded` costs one
//! failover step to the next ring position ([`rt::ring::Ring::successors`]),
//! never a silent drop — when every candidate is exhausted the router
//! itself answers `overloaded` (if anyone shed) or an `error` frame.
//! A background thread health-checks every member with the wire `ping`
//! op and flips ring marks both ways, so a node that was SIGKILLed
//! stops receiving keys within one probe period and a recovered node
//! is folded back in.
//!
//! Chaos testing reuses the deterministic [`FaultPlan`] machinery:
//! [`FaultSite::Partition`] (keyed by member name) makes the router
//! treat that member as unreachable — connects "refused" — without
//! the member actually dying, which is exactly a network partition as
//! seen from the router.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::telemetry::{prometheus_text, MetricsRing, MetricsSnapshot};
use rt::ring::Ring;
use rt::{CancelToken, FaultPlan, FaultSite};
use server::wire;

/// Poll granularity for blocking loops (accept, reads, shutdown).
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Mutex helper: a panicking holder poisons the lock, but every
/// structure here stays usable, so recover the guard.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Router tuning. [`Default`] matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:7170`; use port 0 for tests).
    pub addr: String,
    /// Fabric members as `(name, addr)` pairs. Ring positions derive
    /// from the *name*, so an address change does not reshuffle keys.
    pub members: Vec<(String, String)>,
    /// Health-probe period. Each round pings every member and flips
    /// its ring mark both ways.
    pub health_every: Duration,
    /// Failover budget per request: how many ring positions to try
    /// before answering the client ourselves. `0` means "every live
    /// member".
    pub max_attempts: usize,
    /// Backend connect timeout (also bounds one health probe).
    pub connect_timeout: Duration,
    /// How long to wait for a backend's response line before treating
    /// the member as failed for this request.
    pub reply_timeout: Duration,
    /// Largest accepted request frame, in bytes (mirrors the server's
    /// own bound — the router refuses what the backend would refuse).
    pub max_frame_bytes: usize,
    /// Deterministic fault injection ([`FaultSite::Partition`]).
    pub faults: FaultPlan,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7170".into(),
            members: Vec::new(),
            health_every: Duration::from_millis(250),
            max_attempts: 0,
            connect_timeout: Duration::from_millis(250),
            reply_timeout: Duration::from_secs(30),
            max_frame_bytes: 4 << 20,
            faults: FaultPlan::default(),
        }
    }
}

/// Point-in-time router accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Client connections accepted.
    pub connections: u64,
    /// Frames routed to a backend (checks and `peer_get` relays).
    pub routed: u64,
    /// Frames that came back with a relayable backend response.
    pub relayed: u64,
    /// Transport-level failovers: a member refused the connection,
    /// died mid-request, or returned garbage, and the request moved to
    /// the next ring position.
    pub failovers: u64,
    /// Load-level failovers: a member answered `overloaded` and the
    /// request moved on (the member stays up — shedding is healthy).
    pub overload_reroutes: u64,
    /// Requests the router had to answer itself after exhausting every
    /// candidate (`overloaded` if any member shed, `error` otherwise).
    pub shed: u64,
    /// Health transitions up→down (probe failures and passive
    /// mid-request failures both count).
    pub down_marks: u64,
    /// Members currently marked up.
    pub members_up: u64,
}

struct RouterShared {
    config: RouterConfig,
    ring: Mutex<Ring>,
    shutdown: CancelToken,
    connections: AtomicU64,
    routed: AtomicU64,
    relayed: AtomicU64,
    failovers: AtomicU64,
    overload_reroutes: AtomicU64,
    shed: AtomicU64,
    down_marks: AtomicU64,
    /// Relay latency (admission at the router to response relayed), µs.
    relay_us: obs::Histogram,
    started: Instant,
}

impl RouterShared {
    fn stats(&self) -> RouterStats {
        RouterStats {
            connections: self.connections.load(Ordering::Relaxed),
            routed: self.routed.load(Ordering::Relaxed),
            relayed: self.relayed.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            overload_reroutes: self.overload_reroutes.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            down_marks: self.down_marks.load(Ordering::Relaxed),
            members_up: lock(&self.ring).up_count() as u64,
        }
    }

    fn counters(&self) -> BTreeMap<String, u64> {
        let s = self.stats();
        BTreeMap::from([
            ("router.connections".into(), s.connections),
            ("router.routed".into(), s.routed),
            ("router.relayed".into(), s.relayed),
            ("router.failovers".into(), s.failovers),
            ("router.overload_reroutes".into(), s.overload_reroutes),
            ("router.shed".into(), s.shed),
            ("router.down_marks".into(), s.down_marks),
            ("router.members_up".into(), s.members_up),
        ])
    }

    /// Marks `name` down (passive failure detection); the health thread
    /// will fold it back in once it answers pings again.
    fn mark_down(&self, name: &str) {
        let mut ring = lock(&self.ring);
        if ring.members().iter().any(|m| m.name == name && m.up) {
            ring.set_up(name, false);
            self.down_marks.fetch_add(1, Ordering::Relaxed);
            obs::counter("router.down_marks").inc();
        }
    }
}

/// A running fabric router. Obtain with [`Router::start`]; stop with
/// [`Router::shutdown`].
pub struct Router {
    shared: Arc<RouterShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Router {
    /// Binds `config.addr`, runs one synchronous health round (so the
    /// ring starts with truthful marks instead of assuming everyone is
    /// up), then starts the acceptor and the periodic health thread.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an empty member list; otherwise I/O errors
    /// from binding the listener or spawning the acceptor.
    pub fn start(config: RouterConfig) -> std::io::Result<Router> {
        if config.members.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "a fabric needs at least one member (--peers)",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let ring = Ring::new(config.members.iter().cloned());
        let shared = Arc::new(RouterShared {
            config,
            ring: Mutex::new(ring),
            shutdown: CancelToken::new(),
            connections: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            relayed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            overload_reroutes: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            down_marks: AtomicU64::new(0),
            relay_us: obs::Histogram::new(),
            started: Instant::now(),
        });
        health_round(&shared);
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("fabric-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))?
        };
        let health = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("fabric-health".into())
                .spawn(move || health_loop(&shared))
                .ok()
        };
        Ok(Router {
            shared,
            addr,
            acceptor: Some(acceptor),
            health,
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current accounting.
    pub fn stats(&self) -> RouterStats {
        self.shared.stats()
    }

    /// Members and their current health marks, in join order.
    pub fn members(&self) -> Vec<(String, bool)> {
        lock(&self.shared.ring)
            .members()
            .iter()
            .map(|m| (m.name.clone(), m.up))
            .collect()
    }

    /// Stops accepting, joins every thread, returns final accounting.
    /// In-flight relays finish (their connection threads are joined).
    pub fn shutdown(mut self) -> RouterStats {
        self.shared.shutdown.cancel();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        for h in std::mem::take(&mut *lock(&self.conns)) {
            let _ = h.join();
        }
        self.shared.stats()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<RouterShared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                obs::counter("router.connections").inc();
                let spawned = {
                    let shared = shared.clone();
                    std::thread::Builder::new()
                        .name("fabric-conn".into())
                        .spawn(move || connection_loop(stream, &shared))
                };
                if let Ok(handle) = spawned {
                    lock(conns).push(handle);
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// One health round: ping every member, flip marks both ways. A member
/// under an injected partition is unreachable *from the router*, so it
/// is marked down exactly as a real partition would.
fn health_round(shared: &Arc<RouterShared>) {
    let members: Vec<(String, String)> = lock(&shared.ring)
        .members()
        .iter()
        .map(|m| (m.name.clone(), m.addr.clone()))
        .collect();
    for (name, addr) in members {
        let up = shared
            .config
            .faults
            .decide(FaultSite::Partition, &name)
            .is_none()
            && probe(&addr, shared.config.connect_timeout);
        let mut ring = lock(&shared.ring);
        let was_up = ring.members().iter().any(|m| m.name == name && m.up);
        ring.set_up(&name, up);
        drop(ring);
        if was_up && !up {
            shared.down_marks.fetch_add(1, Ordering::Relaxed);
            obs::counter("router.down_marks").inc();
        }
    }
}

fn health_loop(shared: &Arc<RouterShared>) {
    while !shared.shutdown.is_cancelled() {
        let mut slept = Duration::ZERO;
        while slept < shared.config.health_every && !shared.shutdown.is_cancelled() {
            let step = POLL_INTERVAL.min(shared.config.health_every - slept);
            std::thread::sleep(step);
            slept += step;
        }
        if shared.shutdown.is_cancelled() {
            return;
        }
        health_round(shared);
    }
}

/// One wire `ping` against `addr`: true iff it connects, answers within
/// the timeout, and reports `ready`. The probe is the router's own
/// traffic, so it speaks `pathslice-wire/v2` upstream.
fn probe(addr: &str, timeout: Duration) -> bool {
    let frame = wire::ping_request_json_versioned("fabric-health", wire::WireVersion::V2) + "\n";
    match exchange(addr, frame.as_bytes(), timeout, timeout) {
        Ok(line) => matches!(
            wire::Response::from_json(line.trim_end()),
            Ok(wire::Response::Health { ready: true, .. })
        ),
        Err(_) => false,
    }
}

/// One connect → write frame → read one line exchange with hard
/// deadlines on both sides. Used for health probes; request relays use
/// the pooled path in [`relay_once`].
fn exchange(
    addr: &str,
    frame: &[u8],
    connect_timeout: Duration,
    reply_timeout: Duration,
) -> Result<String, String> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no address"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, connect_timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(reply_timeout));
    stream
        .write_all(frame)
        .map_err(|e| format!("write {addr}: {e}"))?;
    read_line(&mut stream, reply_timeout)
}

/// Reads one newline-terminated response off `stream` within
/// `deadline`-from-now, in [`POLL_INTERVAL`] slices.
fn read_line(stream: &mut TcpStream, timeout: Duration) -> Result<String, String> {
    let deadline = Instant::now() + timeout;
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while !buf.ends_with(b"\n") {
        if Instant::now() >= deadline {
            return Err("timed out waiting for response".into());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("peer closed mid-response".into()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    String::from_utf8(buf).map_err(|_| "response is not UTF-8".into())
}

/// Reads client frames until EOF/shutdown, answering each one. Backend
/// connections are pooled per client connection (`addr → stream`), so
/// a client with affinity for one key reuses one warm TCP path.
fn connection_loop(stream: TcpStream, shared: &Arc<RouterShared>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut pool: HashMap<String, TcpStream> = HashMap::new();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return,
            Ok(_) if buf.last() != Some(&b'\n') => {}
            Ok(_) => {
                let line = std::mem::take(&mut buf);
                if line.len() > shared.config.max_frame_bytes {
                    let e = wire::Response::Error {
                        id: String::new(),
                        error: "frame exceeds maximum size".into(),
                    };
                    let _ = writer.write_all((e.to_json() + "\n").as_bytes());
                    return;
                }
                let response = handle_frame(&line, shared, &mut pool);
                if writer.write_all(&response).is_err() {
                    return;
                }
                if shared.shutdown.is_cancelled() {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.is_cancelled() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
        if buf.len() > shared.config.max_frame_bytes {
            let e = wire::Response::Error {
                id: String::new(),
                error: "frame exceeds maximum size".into(),
            };
            let _ = writer.write_all((e.to_json() + "\n").as_bytes());
            return;
        }
    }
}

/// Answers one client frame: telemetry ops inline, checks and
/// `peer_get`s by relay. Always returns a newline-terminated frame,
/// serialized under the requesting frame's wire revision (a frame that
/// does not parse names no revision and is answered under v1).
fn handle_frame(
    line: &[u8],
    shared: &Arc<RouterShared>,
    pool: &mut HashMap<String, TcpStream>,
) -> Vec<u8> {
    let text = String::from_utf8_lossy(line);
    let answer =
        |r: wire::Response, v: wire::WireVersion| (r.to_json_versioned(v) + "\n").into_bytes();
    match wire::Incoming::parse(text.trim_end()) {
        Err(e) => answer(
            wire::Response::Error {
                id: String::new(),
                error: format!("bad request: {}", e.message),
            },
            wire::WireVersion::V1,
        ),
        Ok((wire::Incoming::Ping { id }, version)) => {
            let up = lock(&shared.ring).up_count() as u64;
            answer(
                wire::Response::Health {
                    id,
                    ready: up > 0,
                    workers_alive: up,
                    journal: None,
                },
                version,
            )
        }
        Ok((wire::Incoming::Metrics { id }, version)) => {
            let counters = shared.counters();
            let mut hists = BTreeMap::new();
            hists.insert("router.relay_us".to_owned(), shared.relay_us.snapshot());
            let mut ring = MetricsRing::new(1);
            ring.push(MetricsSnapshot {
                at_us: shared.started.elapsed().as_micros() as u64,
                counters: counters.clone(),
                histograms: hists.clone(),
            });
            answer(
                wire::Response::Metrics {
                    id,
                    exposition: prometheus_text(&counters, &hists),
                    series: ring.to_json(),
                },
                version,
            )
        }
        Ok((wire::Incoming::SlowTraces { id }, version)) => answer(
            wire::Response::SlowTraces {
                id,
                // The router holds no span trees; slow requests are
                // traced on the member that ran them.
                traces: server::slow_traces_json(&[]),
            },
            version,
        ),
        Ok((wire::Incoming::Check(req), version)) => {
            forward(line, route_key(&req.source), &req.id, version, shared, pool)
        }
        Ok((wire::Incoming::PeerGet { id, key, .. }, version)) => {
            forward(line, key, &id, version, shared, pool)
        }
    }
}

/// The ring key for a check: the program's content key when the source
/// parses (so reformatted duplicates collapse onto one node), an FNV
/// over the raw bytes otherwise (the backend will answer the parse
/// error; routing just has to be deterministic).
fn route_key(source: &str) -> u64 {
    blastlite::Session::content_key(source, "<route>")
        .unwrap_or_else(|_| incr::hash::fnv64(source.as_bytes()))
}

/// Relays `line` to the ring owner of `key`, walking successors on
/// failure. Exhaustion answers the client `overloaded` (if any member
/// shed) or an `error` frame — never silence — under the client's own
/// wire revision.
fn forward(
    line: &[u8],
    key: u64,
    id: &str,
    version: wire::WireVersion,
    shared: &Arc<RouterShared>,
    pool: &mut HashMap<String, TcpStream>,
) -> Vec<u8> {
    shared.routed.fetch_add(1, Ordering::Relaxed);
    obs::counter("router.routed").inc();
    let start = Instant::now();
    let candidates: Vec<(String, String)> = lock(&shared.ring)
        .successors(key)
        .into_iter()
        .map(|m| (m.name.clone(), m.addr.clone()))
        .collect();
    let budget = match shared.config.max_attempts {
        0 => candidates.len(),
        n => n,
    };
    let mut saw_overloaded = false;
    let mut tried = 0usize;
    for (name, addr) in candidates.into_iter().take(budget) {
        tried += 1;
        // An injected partition refuses every connection to this
        // member, as seen from the router only.
        if shared
            .config
            .faults
            .decide(FaultSite::Partition, &name)
            .is_some()
        {
            shared.mark_down(&name);
            shared.failovers.fetch_add(1, Ordering::Relaxed);
            obs::counter("router.failovers").inc();
            continue;
        }
        match relay_once(&addr, line, shared, pool) {
            Ok(response) => {
                match wire::Response::from_json(String::from_utf8_lossy(&response).trim_end()) {
                    Ok(wire::Response::Overloaded { .. }) => {
                        // Healthy shedding: move on without a down-mark.
                        saw_overloaded = true;
                        shared.overload_reroutes.fetch_add(1, Ordering::Relaxed);
                        obs::counter("router.overload_reroutes").inc();
                    }
                    Ok(_) => {
                        shared.relayed.fetch_add(1, Ordering::Relaxed);
                        obs::counter("router.relayed").inc();
                        shared.relay_us.record(start.elapsed().as_micros() as u64);
                        return response;
                    }
                    Err(_) => {
                        // A frame that does not parse is a damaged
                        // transport, not a verdict: fail over.
                        pool.remove(&addr);
                        shared.failovers.fetch_add(1, Ordering::Relaxed);
                        obs::counter("router.failovers").inc();
                    }
                }
            }
            Err(_) => {
                pool.remove(&addr);
                shared.mark_down(&name);
                shared.failovers.fetch_add(1, Ordering::Relaxed);
                obs::counter("router.failovers").inc();
            }
        }
    }
    shared.shed.fetch_add(1, Ordering::Relaxed);
    obs::counter("router.shed").inc();
    let answer = if saw_overloaded {
        wire::Response::Overloaded { id: id.to_owned() }
    } else {
        wire::Response::Error {
            id: id.to_owned(),
            error: format!("fabric: no live member could serve this request ({tried} tried)"),
        }
    };
    (answer.to_json_versioned(version) + "\n").into_bytes()
}

/// One relay over the per-connection pool: reuse the pooled stream to
/// `addr` if there is one, falling back to a fresh connect once — a
/// pooled stream goes stale whenever the backend restarts, and that
/// must cost a reconnect, not a failover.
fn relay_once(
    addr: &str,
    line: &[u8],
    shared: &Arc<RouterShared>,
    pool: &mut HashMap<String, TcpStream>,
) -> Result<Vec<u8>, String> {
    if let Some(mut stream) = pool.remove(addr) {
        let _ = stream.set_write_timeout(Some(shared.config.reply_timeout));
        if stream.write_all(line).is_ok() {
            if let Ok(response) = read_line(&mut stream, shared.config.reply_timeout) {
                pool.insert(addr.to_owned(), stream);
                return Ok(response.into_bytes());
            }
        }
        // Stale pool entry: drop it and try one fresh connection.
    }
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no address"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, shared.config.connect_timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.config.reply_timeout));
    stream
        .write_all(line)
        .map_err(|e| format!("write {addr}: {e}"))?;
    let response = read_line(&mut stream, shared.config.reply_timeout)?;
    pool.insert(addr.to_owned(), stream);
    Ok(response.into_bytes())
}

/// Renders router stats for `--stats` style output.
impl std::fmt::Display for RouterStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} connection(s), {} routed, {} relayed, {} failover(s), \
             {} overload reroute(s), {} shed, {} down-mark(s), {} member(s) up",
            self.connections,
            self.routed,
            self.relayed,
            self.failovers,
            self.overload_reroutes,
            self.shed,
            self.down_marks,
            self.members_up,
        )
    }
}
