//! The `pathslice` binary — see [`cli::run_command`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match cli::run_command(&args, &mut out) {
        Ok(code) => {
            print!("{out}");
            std::process::exit(code);
        }
        Err(msg) => {
            print!("{out}");
            eprintln!("error: {msg}");
            std::process::exit(64);
        }
    }
}
