//! Implementation of the `pathslice` command-line tool.
//!
//! ```text
//! pathslice check <file.imp> [--no-slicing] [--timeout <secs>] [--dfs]
//!                            [--jobs <n>] [--retries <k>]
//!                            [--validate] [--cert <trace.json>]
//!                            [--stats] [--stats-json <stats.json>]
//!                            [--trace-out <spans.json>]
//! pathslice serve [--addr <host:port>] [--jobs <n>] [--queue <n>]
//!                 [--fast-queue <n>] [--cache <n>] [--timeout <secs>]
//!                 [--journal <dir>]
//!                 [--name <node>] [--peers <node=addr,...>]
//!                 [--stats] [--trace-out <spans.json>]
//!                 [--slow-ms <ms>] [--slow-out <traces.json>]
//!                 [--metrics-every <ms>]
//! pathslice route --peers <node=addr,...> [--addr <host:port>]
//!                 [--health-ms <ms>] [--stats]
//! pathslice metrics [--addr <host:port>] [--json] [--slow]
//! pathslice flame <spans.json>
//! pathslice bench diff <baseline.json|dir> <current.json>
//!                      [--rel-tol <f>] [--abs-slack <n>] [--time-gate]
//!                      [--json-out <verdict.json>]
//! pathslice slice <file.imp> [--skip-functions] [--no-early-unsat]
//! pathslice run   <file.imp> [--input v1,v2,...] [--fuel <n>]
//! pathslice dot   <file.imp> [<function>]
//! pathslice validate <trace.json>
//! ```
//!
//! * `check` — CEGAR-verify every error cluster (per-function, §5
//!   methodology) on the fault-tolerant driver and print verdicts; with
//!   a bug, print the witness slice. `--jobs` parallelizes across
//!   clusters; `--retries` enables the budget-escalation ladder.
//!   `--validate` runs the independent certificate validator on every
//!   verdict and downgrades unconfirmed ones to `MISMATCH`; `--cert`
//!   writes the certificates (with the source embedded) to a portable
//!   trace file. `--stats` enables the observability layer and appends
//!   a per-phase timing table plus the metric counters; `--stats-json`
//!   writes the same data machine-readably (`pathslice-stats/v1`, field
//!   names shared with `pathslice-bench/v1`); `--trace-out` dumps the
//!   raw span tree as `pathslice-spans/v1` JSON. SIGINT cancels the run
//!   gracefully: in-flight clusters report `TIMEOUT(Cancelled)` and the
//!   stats/trace epilogue still runs, so no span data is lost.
//! * `serve` — run the long-lived verification daemon (`crates/server`):
//!   newline-delimited `pathslice-wire/v1` (one request in flight) or
//!   `/v2` (pipelined, id-correlated) JSON over TCP on an event-driven
//!   reactor, a bounded two-lane admission pool (`--queue` caps cold
//!   checks, `--fast-queue` caps warm cache lookups) that answers
//!   `overloaded` under pressure, and a content-addressed analysis
//!   cache shared across requests.
//!   `--journal` attaches a durable verdict journal: completed verdicts
//!   are appended (checksummed, fsync-batched) and on restart the
//!   journal is replayed with every recovered verdict re-validated
//!   through its certificate before it may serve warm. SIGINT or
//!   SIGTERM triggers a graceful drain (finish admitted work, join
//!   every thread) and then flushes `--stats` / `--trace-out` output.
//!   `--slow-ms` sets the tail-sampling latency threshold and
//!   `--metrics-every` the telemetry snapshot interval; `--slow-out`
//!   dumps the retained slow-request traces
//!   (`pathslice-slowtraces/v1`) after the drain. `--name` and
//!   `--peers` enroll the node in a verification fabric: on a local
//!   verdict-cache miss it asks the ring owner of the request's
//!   content key for a journaled verdict, and accepts the answer only
//!   after recompiling the embedded source and re-validating the
//!   attached certificate locally.
//! * `route` — run the fabric router (`crates/fabric`): speaks
//!   `pathslice-wire/v1` to clients and relays each check frame,
//!   byte-for-byte, to the consistent-hash ring owner of the program's
//!   content key, so repeat submissions land on the warm node. Members
//!   are health-checked with the wire `ping` op; a dead, partitioned,
//!   or `overloaded` member costs a bounded failover walk to the next
//!   ring position, never a dropped request.
//! * `metrics` — scrape a live daemon over the wire (`op: "metrics"`):
//!   Prometheus text exposition by default, the
//!   `pathslice-metrics/v1` snapshot/delta time series with `--json`,
//!   or the slow-trace ring with `--slow`. Read-only and answered
//!   inline by the daemon's connection thread, so it works even when
//!   every worker is busy.
//! * `flame` — fold a `pathslice-spans/v1` dump (from `--trace-out`)
//!   into collapsed-stack lines for flamegraph tooling.
//! * `bench diff` — the perf-regression gate: compare a fresh
//!   `pathslice-bench/v1` report against a baseline file or the
//!   committed `results/history/` directory (exit 1 on regression;
//!   see `bench::diff` for the metric classes).
//! * `slice` — take the first abstract error path the checker's
//!   reachability produces and print its path slice with reasons.
//! * `run` — execute the program concretely with the given `nondet()`
//!   inputs.
//! * `dot` — emit Graphviz for a function's CFA.
//! * `validate` — recheck a trace file written by `check --cert`:
//!   recompile the embedded source and revalidate every certificate.
//!
//! All logic lives here (testable); `main.rs` is a thin shim.

use pathslicing::prelude::*;
use pathslicing::rt::Budget;
use std::fmt::Write as _;
use std::time::Duration;

/// Runs one CLI invocation. `args` excludes the binary name. Output is
/// appended to `out`; the return value is the process exit code.
///
/// # Errors
///
/// Returns a message (for stderr) on usage errors, I/O errors, or
/// front-end failures.
pub fn run_command(args: &[String], out: &mut String) -> Result<i32, String> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    match cmd {
        "check" => cmd_check(&args[1..], out),
        "serve" => cmd_serve(&args[1..], out),
        "route" => cmd_route(&args[1..], out),
        "metrics" => cmd_metrics(&args[1..], out),
        "flame" => cmd_flame(&args[1..], out),
        "bench" => cmd_bench(&args[1..], out),
        "slice" => cmd_slice(&args[1..], out),
        "run" => cmd_run(&args[1..], out),
        "dot" => cmd_dot(&args[1..], out),
        "validate" => cmd_validate(&args[1..], out),
        "help" | "--help" | "-h" => {
            out.push_str(USAGE);
            Ok(0)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
pathslice — path slicing (PLDI 2005) toolchain

USAGE:
    pathslice check <file.imp> [--no-slicing] [--timeout <secs>] [--dfs]
                               [--jobs <n>] [--retries <k>]
                               [--validate] [--cert <trace.json>]
                               [--from <old.imp>]
                               [--stats] [--stats-json <stats.json>]
                               [--trace-out <spans.json>]
    pathslice serve [--addr <host:port>] [--jobs <n>] [--queue <n>]
                    [--fast-queue <n>] [--cache <n>] [--timeout <secs>]
                    [--journal <dir>]
                    [--name <node>] [--peers <node=addr,...>]
                    [--stats] [--trace-out <spans.json>]
                    [--slow-ms <ms>] [--slow-out <traces.json>]
                    [--metrics-every <ms>]
    pathslice route --peers <node=addr,...> [--addr <host:port>]
                    [--health-ms <ms>] [--stats]
    pathslice metrics [--addr <host:port>] [--json] [--slow]
    pathslice flame <spans.json>
    pathslice bench diff <baseline.json|dir> <current.json>
                         [--rel-tol <f>] [--abs-slack <n>] [--time-gate]
                         [--json-out <verdict.json>]
    pathslice slice <file.imp> [--skip-functions] [--no-early-unsat]
    pathslice run   <file.imp> [--input v1,v2,...] [--fuel <n>]
    pathslice dot   <file.imp> [<function>]
    pathslice validate <trace.json>
";

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    compile_source(&src, path).map(|(p, _)| p)
}

fn compile_source(src: &str, origin: &str) -> Result<(Program, String), String> {
    // Front-end errors render with a source snippet and caret.
    let ast = pathslicing::imp::parse(src).map_err(|e| format!("{origin}: {}", e.render(src)))?;
    let program = pathslicing::cfa::lower(&ast).map_err(|e| format!("{origin}: {e}"))?;
    pathslicing::cfa::validate(&program).map_err(|e| format!("{origin}: {e}"))?;
    Ok((program, src.to_owned()))
}

fn cmd_check(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, flags) = split_flags(args)?;
    let stats = flags.iter().any(|f| f == "--stats");
    let trace_out = flag_value(&flags, "--trace-out")?;
    let stats_json = flag_value(&flags, "--stats-json")?;
    if stats || trace_out.is_some() || stats_json.is_some() {
        pathslicing::obs::set_enabled(true);
    }
    let src = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let mut config = CheckerConfig {
        reducer: if flags.iter().any(|f| f == "--no-slicing") {
            Reducer::Identity
        } else {
            Reducer::path_slice()
        },
        ..CheckerConfig::default()
    };
    if let Some(t) = flag_value(&flags, "--timeout")? {
        config.time_budget = Duration::from_secs(
            t.parse()
                .map_err(|_| format!("bad --timeout value `{t}`"))?,
        );
    }
    if flags.iter().any(|f| f == "--dfs") {
        config.search_order = SearchOrder::Dfs;
    }
    let mut driver = DriverConfig::sequential();
    // Ctrl-C cancels in-flight clusters instead of killing the process:
    // remaining clusters report TIMEOUT(Cancelled) and the stats/trace
    // epilogue below still runs, so --trace-out is flushed.
    pathslicing::rt::install_sigint_handler();
    driver.cancel = Some(pathslicing::rt::shutdown_token());
    if let Some(j) = flag_value(&flags, "--jobs")? {
        driver.jobs = j.parse().map_err(|_| format!("bad --jobs value `{j}`"))?;
    }
    if let Some(k) = flag_value(&flags, "--retries")? {
        driver.retry = RetryPolicy::retries(
            k.parse()
                .map_err(|_| format!("bad --retries value `{k}`"))?,
        );
    }
    if flags.iter().any(|f| f == "--validate") {
        // Production validation: an empty fault plan corrupts nothing.
        driver = driver.with_validator(pathslicing::certify::validator(
            pathslicing::rt::FaultPlan::default(),
        ));
    }
    let cert_path = flag_value(&flags, "--cert")?;
    // One code path with the server: the same Session compiles the
    // program and the same render_verdicts prints the verdicts. With
    // `--from <old.imp>`, the session is built *incrementally* from the
    // previous version: the old program is checked to warm the
    // per-cluster verdict memo, the edit is diffed function-by-function,
    // and only invalidated clusters re-run (reuse gated on each stored
    // verdict's certificate re-validating).
    let from = flag_value(&flags, "--from")?;
    let (session, update) = match &from {
        Some(old_file) => {
            let old_src = std::fs::read_to_string(old_file)
                .map_err(|e| format!("cannot read {old_file}: {e}"))?;
            let old = pathslicing::blastlite::Session::compile(&old_src, old_file)?;
            let _ = old.check(config, &driver);
            let (session, up) = pathslicing::blastlite::Session::update(&old, &src, &file)?;
            (session, Some(up))
        }
        None => (pathslicing::blastlite::Session::compile(&src, &file)?, None),
    };
    let t0 = std::time::Instant::now();
    let (driver_report, reuse) = if update.is_some() {
        let gate = pathslicing::certify::validator(pathslicing::rt::FaultPlan::default());
        let (report, reuse) = session.check_incremental(config, &driver, Some(&gate), true);
        (report, Some(reuse))
    } else {
        (session.check(config, &driver), None)
    };
    let wall = t0.elapsed();
    if let (Some(up), Some(reuse)) = (&update, &reuse) {
        if up.cold {
            let _ = writeln!(
                out,
                "incremental: declaration-level change — fell back to a cold check"
            );
        } else {
            let _ = writeln!(
                out,
                "incremental: {} function(s) edited, {} cluster verdict(s) reused, \
                 {} re-checked, {} rejected by the certificate gate",
                up.changed_functions.len(),
                reuse.verdict_reused,
                reuse.recomputed,
                reuse.cert_rejected
            );
        }
    }
    if let Some(path) = cert_path {
        let trace = pathslicing::certify::certify_report(
            session.analyses(),
            &driver_report,
            session.source(),
        );
        std::fs::write(&path, pathslicing::certify::to_json(&trace))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "wrote {} certificate(s) to {path}",
            trace.clusters.len()
        );
    }
    let summary = driver_report.summary();
    let reports = driver_report.into_cluster_reports();
    let (render, worst) = if reports.is_empty() {
        ("no error locations — nothing to check\n".to_owned(), 0)
    } else {
        pathslicing::blastlite::render_verdicts(session.program(), &reports)
    };
    out.push_str(&render);
    // Drain the span buffer once; both epilogues read the same batch.
    let spans = pathslicing::obs::take_spans();
    emit_obs(out, stats, trace_out.as_deref(), &summary, &spans)?;
    write_stats_json(stats_json.as_deref(), worst, wall, &summary, &spans)?;
    Ok(worst)
}

/// Writes the `--stats-json` document: the `--stats` tables as
/// machine-readable `pathslice-stats/v1` JSON. Field names (`phases_us`
/// with `count`/`total_us`/`self_us`, `counters`, `times_s`) match the
/// `pathslice-bench/v1` row schema so downstream tooling can share
/// parsers.
fn write_stats_json(
    path: Option<&str>,
    exit: i32,
    wall: Duration,
    summary: &pathslicing::blastlite::DriverSummary,
    spans: &[pathslicing::obs::SpanRecord],
) -> Result<(), String> {
    use pathslicing::obs::{self, json::Json};
    let Some(path) = path else { return Ok(()) };
    let phases = Json::Obj(
        obs::phase_totals(spans)
            .into_iter()
            .map(|(name, s)| {
                (
                    name,
                    Json::Obj(vec![
                        ("count".into(), Json::Num(s.count as i64)),
                        ("total_us".into(), Json::Num(s.total_us as i64)),
                        ("self_us".into(), Json::Num(s.self_us as i64)),
                    ]),
                )
            })
            .collect(),
    );
    let counters = Json::Obj(
        obs::counters()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), Json::Num(v as i64)))
            .collect(),
    );
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("pathslice-stats/v1".into())),
        ("command".into(), Json::Str("check".into())),
        ("exit".into(), Json::Num(exit as i64)),
        (
            "times_s".into(),
            Json::Obj(vec![("total".into(), Json::Float(wall.as_secs_f64()))]),
        ),
        ("phases_us".into(), phases),
        ("counters".into(), counters),
        (
            "driver".into(),
            Json::Obj(vec![
                ("clusters".into(), Json::Num(summary.clusters as i64)),
                ("retries".into(), Json::Num(summary.retries as i64)),
                (
                    "retried_clusters".into(),
                    Json::Num(summary.retried_clusters as i64),
                ),
                (
                    "degraded_clusters".into(),
                    Json::Num(summary.degraded_clusters as i64),
                ),
                (
                    "internal_errors".into(),
                    Json::Num(summary.internal_errors as i64),
                ),
            ]),
        ),
    ]);
    std::fs::write(path, doc.to_text() + "\n").map_err(|e| format!("cannot write {path}: {e}"))
}

/// The `check` epilogue for `--stats` / `--trace-out`: optionally dumps
/// the drained spans as `pathslice-spans/v1` JSON, and optionally
/// appends the phase-timing table, the counters, and the driver's retry
/// summary.
fn emit_obs(
    out: &mut String,
    stats: bool,
    trace_out: Option<&str>,
    summary: &pathslicing::blastlite::DriverSummary,
    spans: &[pathslicing::obs::SpanRecord],
) -> Result<(), String> {
    use pathslicing::obs;
    // Surface retries even without --stats: a silently degraded verdict
    // is exactly what a per-run summary exists to catch.
    if summary.retries > 0 && !stats {
        let _ = writeln!(out, "# driver: {summary}");
    }
    if !stats && trace_out.is_none() {
        return Ok(());
    }
    if let Some(path) = trace_out {
        obs::write_spans_to(path, spans)?;
        let _ = writeln!(out, "wrote {} span(s) to {path}", spans.len());
    }
    if stats {
        let _ = writeln!(out, "\n== phases ==");
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>12} {:>12}",
            "phase", "count", "total(ms)", "self(ms)"
        );
        for (name, s) in obs::phase_totals(spans) {
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>12.3} {:>12.3}",
                name,
                s.count,
                s.total_us as f64 / 1000.0,
                s.self_us as f64 / 1000.0
            );
        }
        let _ = writeln!(out, "\n== counters ==");
        for (name, v) in obs::counters() {
            let _ = writeln!(out, "{name:<28} {v:>12}");
        }
        for (name, h) in obs::histograms() {
            let _ = writeln!(out, "{:<28} {:>12} obs, sum {}", name, h.count, h.sum);
        }
        let _ = writeln!(out, "\n== driver ==");
        let _ = writeln!(out, "{summary}");
    }
    Ok(())
}

/// `pathslice metrics` — scrape a live daemon's telemetry over the
/// wire. Exposition by default; `--json` for the snapshot/delta time
/// series; `--slow` for the slow-trace ring.
fn cmd_metrics(args: &[String], out: &mut String) -> Result<i32, String> {
    use std::net::ToSocketAddrs as _;
    let addr_s = flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7171".into());
    let addr = addr_s
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .ok_or_else(|| format!("bad --addr `{addr_s}`"))?;
    let mut client =
        server::Client::connect(addr).map_err(|e| format!("cannot connect to {addr_s}: {e}"))?;
    if args.iter().any(|f| f == "--slow") {
        let traces = client.slow_traces("cli-slow")?;
        out.push_str(&traces.to_text());
        out.push('\n');
        return Ok(0);
    }
    let (exposition, series) = client.metrics("cli-metrics")?;
    if args.iter().any(|f| f == "--json") {
        out.push_str(&series.to_text());
        out.push('\n');
    } else {
        out.push_str(&exposition);
    }
    Ok(0)
}

/// `pathslice flame` — fold a `pathslice-spans/v1` dump into
/// collapsed-stack lines (`root;child;leaf <self_us>`), ready for
/// standard flamegraph tooling.
fn cmd_flame(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, _flags) = split_flags(args)?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let spans = pathslicing::obs::spans_from_json(&text).map_err(|e| format!("{file}: {e}"))?;
    out.push_str(&pathslicing::obs::telemetry::spans_to_collapsed(&spans));
    Ok(0)
}

/// `pathslice bench diff` — delegate to the shared regression-gate
/// logic in `bench::diff` (the `bench_diff` binary is the same code).
fn cmd_bench(args: &[String], out: &mut String) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("diff") => bench::diff::cli_main(&args[1..], out),
        _ => Err(format!("usage: pathslice bench diff <args>\n{USAGE}")),
    }
}

fn cmd_serve(args: &[String], out: &mut String) -> Result<i32, String> {
    // SIGINT or SIGTERM cancels the process-global token; the wait loop
    // below then drains the daemon and flushes --stats / --trace-out.
    // (SIGTERM matters in production: process managers send it first,
    // and a drain beats an abrupt exit — though with --journal even
    // SIGKILL only costs the unfsynced tail.)
    pathslicing::rt::install_shutdown_handlers();
    serve_until(args, out, &pathslicing::rt::shutdown_token())
}

/// Runs the `serve` daemon until `stop` is cancelled, then drains it
/// gracefully and appends the final accounting (and the `--stats` /
/// `--trace-out` epilogue) to `out`. Factored out of the `serve`
/// command so embedders and tests control shutdown with their own token
/// instead of the process-global SIGINT one.
///
/// # Errors
///
/// Returns a message on flag errors or bind failure.
pub fn serve_until(
    args: &[String],
    out: &mut String,
    stop: &pathslicing::rt::CancelToken,
) -> Result<i32, String> {
    let stats = args.iter().any(|f| f == "--stats");
    let trace_out = flag_value(args, "--trace-out")?;
    let slow_out = flag_value(args, "--slow-out")?;
    if stats || trace_out.is_some() {
        pathslicing::obs::set_enabled(true);
    }
    let mut config = server::ServerConfig::default();
    if let Some(a) = flag_value(args, "--addr")? {
        config.addr = a;
    }
    if let Some(ms) = flag_value(args, "--slow-ms")? {
        config.slow_threshold = Duration::from_millis(
            ms.parse()
                .map_err(|_| format!("bad --slow-ms value `{ms}`"))?,
        );
    }
    if let Some(ms) = flag_value(args, "--metrics-every")? {
        config.snapshot_every = Duration::from_millis(
            ms.parse()
                .map_err(|_| format!("bad --metrics-every value `{ms}`"))?,
        );
    }
    if let Some(j) = flag_value(args, "--jobs")? {
        config.jobs = j.parse().map_err(|_| format!("bad --jobs value `{j}`"))?;
    }
    if let Some(q) = flag_value(args, "--queue")? {
        config.queue_capacity = q.parse().map_err(|_| format!("bad --queue value `{q}`"))?;
    }
    if let Some(q) = flag_value(args, "--fast-queue")? {
        config.fast_queue_capacity = q
            .parse()
            .map_err(|_| format!("bad --fast-queue value `{q}`"))?;
    }
    if let Some(c) = flag_value(args, "--cache")? {
        config.cache_capacity = c.parse().map_err(|_| format!("bad --cache value `{c}`"))?;
    }
    if let Some(t) = flag_value(args, "--timeout")? {
        config.default_time_budget = Duration::from_secs(
            t.parse()
                .map_err(|_| format!("bad --timeout value `{t}`"))?,
        );
    }
    if let Some(dir) = flag_value(args, "--journal")? {
        config.journal_dir = Some(std::path::PathBuf::from(dir));
    }
    let name = flag_value(args, "--name")?;
    let peers = flag_value(args, "--peers")?;
    match (&name, &peers) {
        (Some(name), Some(peers)) => {
            config.peer_name = Some(name.clone());
            config.peers = parse_peers(peers)?;
            if !config.peers.iter().any(|(n, _)| n == name) {
                return Err(format!("--peers does not list this node (`{name}`)"));
            }
        }
        (None, None) => {}
        _ => return Err("--name and --peers must be given together".into()),
    }
    let jobs = config.jobs.max(1);
    let journaled = config.journal_dir.is_some();
    let server = server::Server::start(config).map_err(|e| format!("cannot start server: {e}"))?;
    // Straight to stderr so it appears while the daemon runs (`out` is
    // only printed after exit).
    if journaled {
        let s = server.stats();
        let (recovered, rejected, torn) = s
            .journal
            .map_or((0, 0, 0), |j| (j.recovered, j.rejected, j.torn));
        eprintln!(
            "pathslice serve: journal replayed — {recovered} verdict(s) recovered, \
             {rejected} rejected, {torn} torn"
        );
    }
    eprintln!(
        "pathslice serve: listening on {} with {jobs} worker(s); Ctrl-C drains and exits",
        server.local_addr()
    );
    while !stop.is_cancelled() {
        std::thread::sleep(Duration::from_millis(25));
    }
    let (final_stats, slow) = server.shutdown_full();
    let _ = writeln!(out, "drained: {final_stats}");
    if let Some(path) = slow_out {
        std::fs::write(&path, server::slow_traces_json(&slow).to_text() + "\n")
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "wrote {} slow trace(s) to {path}", slow.len());
    }
    let spans = pathslicing::obs::take_spans();
    if let Some(path) = trace_out {
        pathslicing::obs::write_spans_to(&path, &spans)?;
        let _ = writeln!(out, "wrote {} span(s) to {path}", spans.len());
    }
    if stats {
        let _ = writeln!(out, "\n== counters ==");
        for (name, v) in pathslicing::obs::counters() {
            let _ = writeln!(out, "{name:<28} {v:>12}");
        }
    }
    Ok(0)
}

/// Parses `--peers` syntax: `name=host:port[,name=host:port...]`.
fn parse_peers(spec: &str) -> Result<Vec<(String, String)>, String> {
    let mut members = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (name, addr) = part
            .split_once('=')
            .ok_or_else(|| format!("bad --peers entry `{part}` (want name=host:port)"))?;
        if name.is_empty() || addr.is_empty() {
            return Err(format!("bad --peers entry `{part}` (want name=host:port)"));
        }
        members.push((name.to_owned(), addr.to_owned()));
    }
    if members.is_empty() {
        return Err("--peers lists no members".into());
    }
    Ok(members)
}

fn cmd_route(args: &[String], out: &mut String) -> Result<i32, String> {
    pathslicing::rt::install_shutdown_handlers();
    route_until(args, out, &pathslicing::rt::shutdown_token())
}

/// Runs the fabric router until `stop` is cancelled, then shuts it down
/// and appends the final accounting. Factored out of the `route`
/// command so tests control shutdown with their own token.
///
/// # Errors
///
/// Returns a message on flag errors or bind failure.
pub fn route_until(
    args: &[String],
    out: &mut String,
    stop: &pathslicing::rt::CancelToken,
) -> Result<i32, String> {
    let stats = args.iter().any(|f| f == "--stats");
    if stats {
        pathslicing::obs::set_enabled(true);
    }
    let mut config = fabric::RouterConfig::default();
    if let Some(a) = flag_value(args, "--addr")? {
        config.addr = a;
    }
    let peers = flag_value(args, "--peers")?.ok_or("route needs --peers <node=addr,...>")?;
    config.members = parse_peers(&peers)?;
    if let Some(ms) = flag_value(args, "--health-ms")? {
        config.health_every = Duration::from_millis(
            ms.parse()
                .map_err(|_| format!("bad --health-ms value `{ms}`"))?,
        );
    }
    let router = fabric::Router::start(config).map_err(|e| format!("cannot start router: {e}"))?;
    eprintln!(
        "pathslice route: listening on {} for {} member(s) ({} up); Ctrl-C drains and exits",
        router.local_addr(),
        router.members().len(),
        router.stats().members_up,
    );
    while !stop.is_cancelled() {
        std::thread::sleep(Duration::from_millis(25));
    }
    let final_stats = router.shutdown();
    let _ = writeln!(out, "drained: {final_stats}");
    if stats {
        let _ = writeln!(out, "\n== counters ==");
        for (name, v) in pathslicing::obs::counters() {
            let _ = writeln!(out, "{name:<28} {v:>12}");
        }
    }
    Ok(0)
}

fn cmd_validate(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, _flags) = split_flags(args)?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let trace = pathslicing::certify::from_json(&text).map_err(|e| format!("{file}: {e}"))?;
    let (program, _) = compile_source(&trace.source, &format!("{file} (embedded source)"))?;
    let analyses = Analyses::build(&program);
    let mut worst = 0;
    for c in &trace.clusters {
        match pathslicing::certify::validate(&analyses, &c.certificate, &c.claimed) {
            Validation::Confirmed { notes } => {
                let _ = writeln!(out, "{:<24} {:<24} VALID", c.func_name, c.claimed);
                for note in notes {
                    let _ = writeln!(out, "    note: {note}");
                }
            }
            Validation::Mismatch { reason } => {
                worst = 3;
                let _ = writeln!(
                    out,
                    "{:<24} {:<24} MISMATCH: {reason}",
                    c.func_name, c.claimed
                );
            }
        }
    }
    if trace.clusters.is_empty() {
        let _ = writeln!(out, "trace file contains no certificates");
    }
    Ok(worst)
}

fn cmd_slice(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, flags) = split_flags(args)?;
    let program = load(&file)?;
    let analyses = Analyses::build(&program);
    let targets: Vec<_> = program
        .cfas()
        .iter()
        .flat_map(|c| c.error_locs().iter().copied())
        .collect();
    if targets.is_empty() {
        return Err("program has no error locations".into());
    }
    let mut pool = pathslicing::blastlite::PredicatePool::new();
    let reach = pathslicing::blastlite::reach::reachable(
        &program,
        &analyses,
        &mut pool,
        &targets,
        1_000_000,
        &Budget::lasting(Duration::from_secs(60)),
        SearchOrder::Dfs,
    );
    let pathslicing::blastlite::reach::ReachResult::ErrorPath { path, .. } = reach else {
        let _ = writeln!(
            out,
            "no abstract path to any error location (program is safe)"
        );
        return Ok(0);
    };
    let options = SliceOptions {
        early_unsat: !flags.iter().any(|f| f == "--no-early-unsat"),
        skip_functions: flags.iter().any(|f| f == "--skip-functions"),
    };
    let result = PathSlicer::new(&analyses).slice(&path, options);
    let _ = writeln!(out, "abstract path: {}", path.stats(&program));
    out.push_str(&render_slice(&program, &path, &result));
    Ok(0)
}

fn cmd_run(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, flags) = split_flags(args)?;
    let program = load(&file)?;
    let inputs: Vec<i64> = match flag_value(&flags, "--input")? {
        Some(list) => list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("bad input value `{s}`"))
            })
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let fuel = match flag_value(&flags, "--fuel")? {
        Some(f) => f.parse().map_err(|_| format!("bad --fuel value `{f}`"))?,
        None => 1_000_000,
    };
    let run = Interp::run(
        &program,
        State::zeroed(&program),
        &mut ReplayOracle::new(inputs),
        fuel,
    );
    let _ = writeln!(out, "executed {} operation(s)", run.path.len());
    match run.outcome {
        ExecOutcome::Completed => {
            let _ = writeln!(out, "outcome: completed");
            Ok(0)
        }
        ExecOutcome::ReachedError(loc) => {
            let _ = writeln!(
                out,
                "outcome: reached ERROR in `{}`",
                program.cfa(loc.func).name()
            );
            Ok(1)
        }
        ExecOutcome::OutOfFuel => {
            let _ = writeln!(out, "outcome: out of fuel (possibly diverging)");
            Ok(2)
        }
        ExecOutcome::Stuck(loc, why) => {
            let _ = writeln!(
                out,
                "outcome: stuck at {loc} in `{}` ({why:?})",
                program.cfa(loc.func).name()
            );
            Ok(2)
        }
    }
}

fn cmd_dot(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, rest) = split_flags(args)?;
    let program = load(&file)?;
    let cfa = match rest.first() {
        Some(name) => {
            let f = program
                .func_id(name)
                .ok_or_else(|| format!("no function named `{name}`"))?;
            program.cfa(f)
        }
        None => program.cfa(program.main()),
    };
    out.push_str(&program.to_dot(cfa));
    Ok(0)
}

/// Splits `[file, flags...]`, requiring the file first.
fn split_flags(args: &[String]) -> Result<(String, Vec<String>), String> {
    let Some(file) = args.first() else {
        return Err(format!("missing input file\n{USAGE}"));
    };
    if file.starts_with('-') {
        return Err(format!("expected input file, found flag `{file}`\n{USAGE}"));
    }
    Ok((file.clone(), args[1..].to_vec()))
}

/// Looks up `--flag value` in the flag list.
fn flag_value(flags: &[String], name: &str) -> Result<Option<String>, String> {
    for (i, f) in flags.iter().enumerate() {
        if f == name {
            return match flags.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{name} requires a value")),
            };
        }
        if let Some(v) = f.strip_prefix(&format!("{name}=")) {
            return Ok(Some(v.to_owned()));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("pathslice-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    const BUGGY: &str = r#"
        global limit;
        fn main() {
            local amount, w;
            w = 13;
            amount = nondet();
            if (amount > limit) { if (limit == 0) { error(); } }
        }
    "#;

    const SAFE: &str = r#"
        global x;
        fn main() { x = 1; if (x == 2) { error(); } }
    "#;

    fn run_ok(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        let code = run_command(&args, &mut out).unwrap();
        (code, out)
    }

    #[test]
    fn check_reports_bug_with_witness() {
        let f = write_temp("buggy.imp", BUGGY);
        let (code, out) = run_ok(&["check", &f]);
        assert_eq!(code, 1);
        assert!(out.contains("BUG"), "{out}");
        assert!(out.contains("assume"), "witness printed: {out}");
    }

    const DISPATCH_OLD: &str = r#"
        global s;
        fn f1() { local a; a = 1; if (a < 1) { error(); } }
        fn f2() { local b; b = 2; if (b == 2) { error(); } }
        fn main() { s = nondet(); if (s > 0) { f1(); } else { f2(); } }
    "#;

    #[test]
    fn check_from_reuses_untouched_cluster_verdicts() {
        let old = write_temp("incr-old.imp", DISPATCH_OLD);
        let new = write_temp("incr-new.imp", &DISPATCH_OLD.replace("b == 2", "b == 3"));
        let (code, out) = run_ok(&["check", &new, "--from", &old]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("1 cluster verdict(s) reused, 1 re-checked"),
            "{out}"
        );
        // The verdict lines themselves match a plain cold check.
        let (cold_code, cold_out) = run_ok(&["check", &new]);
        assert_eq!(code, cold_code);
        let verdicts = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.contains("site(s)"))
                .map(|l| {
                    l.rsplit_once("  ")
                        .map_or(l.to_owned(), |(v, _)| v.to_owned())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&out), verdicts(&cold_out));
    }

    #[test]
    fn check_reports_safe() {
        let f = write_temp("safe.imp", SAFE);
        let (code, out) = run_ok(&["check", &f]);
        assert_eq!(code, 0);
        assert!(out.contains("SAFE"), "{out}");
    }

    #[test]
    fn slice_prints_reasons() {
        let f = write_temp("buggy2.imp", BUGGY);
        let (code, out) = run_ok(&["slice", &f]);
        assert_eq!(code, 0);
        assert!(out.contains("path slice"), "{out}");
        assert!(out.contains("bypass"), "{out}");
        assert!(
            !out.contains("w :="),
            "irrelevant assignment sliced away: {out}"
        );
    }

    #[test]
    fn run_executes_with_inputs() {
        let f = write_temp("buggy3.imp", BUGGY);
        let (code, out) = run_ok(&["run", &f, "--input", "5"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("reached ERROR"), "{out}");
        let (code, out) = run_ok(&["run", &f, "--input", "-5"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("completed"), "{out}");
    }

    #[test]
    fn dot_emits_graphviz() {
        let f = write_temp("safe2.imp", SAFE);
        let (code, out) = run_ok(&["dot", &f]);
        assert_eq!(code, 0);
        assert!(out.starts_with("digraph"), "{out}");
    }

    #[test]
    fn usage_errors() {
        let mut out = String::new();
        assert!(run_command(&["check".into()], &mut out).is_err());
        assert!(run_command(&["bogus".into()], &mut out).is_err());
        let f = write_temp("bad.imp", "fn main() {");
        assert!(run_command(&["check".into(), f], &mut out).is_err());
    }

    #[test]
    fn malformed_flags_error_out_instead_of_panicking() {
        let f = write_temp("flags.imp", SAFE);
        let cases: &[&[&str]] = &[
            &["check", &f, "--timeout", "abc"],
            &["check", &f, "--timeout"],
            &["check", &f, "--jobs", "-1"],
            &["check", &f, "--retries", "many"],
            &["run", &f, "--fuel", "1e9"],
            &["run", &f, "--input", "1,x,3"],
            &["check", "/no/such/file.imp"],
        ];
        for case in cases {
            let args: Vec<String> = case.iter().map(|s| s.to_string()).collect();
            let mut out = String::new();
            assert!(run_command(&args, &mut out).is_err(), "{case:?}");
        }
    }

    #[test]
    fn hostile_sources_error_out_instead_of_panicking() {
        let cases = [
            (
                "overflow.imp",
                "fn main() { local x; x = 99999999999999999999; }",
            ),
            ("nonascii.imp", "fn mäin() { }"),
            ("truncated.imp", "fn main() { if (x"),
            ("empty.imp", ""),
        ];
        for (name, src) in cases {
            let f = write_temp(name, src);
            let mut out = String::new();
            assert!(
                run_command(&["check".into(), f], &mut out).is_err(),
                "{name} should be a front-end error"
            );
        }
    }

    #[test]
    fn check_jobs_and_retries_match_sequential_verdicts() {
        let f = write_temp("par.imp", BUGGY);
        let (seq_code, seq_out) = run_ok(&["check", &f]);
        let (par_code, par_out) = run_ok(&["check", &f, "--jobs", "4", "--retries", "2"]);
        assert_eq!(seq_code, par_code);
        // Strip the wall-clock column (last field) before comparing.
        let verdicts = |s: &str| {
            s.lines()
                .map(|l| {
                    l.rsplit_once("  ")
                        .map_or(l.to_owned(), |(v, _)| v.to_owned())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&seq_out), verdicts(&par_out));
    }

    #[test]
    fn check_validate_confirms_both_verdict_kinds() {
        let f = write_temp("validated.imp", BUGGY);
        let (code, out) = run_ok(&["check", &f, "--validate"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("BUG"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");

        let f = write_temp("validated_safe.imp", SAFE);
        let (code, out) = run_ok(&["check", &f, "--validate"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("SAFE"), "{out}");
    }

    #[test]
    fn cert_roundtrip_through_validate_subcommand() {
        let f = write_temp("certified.imp", BUGGY);
        let trace = write_temp("certified.trace.json", "");
        let (code, out) = run_ok(&["check", &f, "--cert", &trace]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("wrote 1 certificate(s)"), "{out}");

        let (code, out) = run_ok(&["validate", &trace]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("VALID"), "{out}");

        // Tamper with the claimed verdict: the validator must object.
        let text = std::fs::read_to_string(&trace).unwrap();
        let tampered = text.replace("\"claimed\":\"Bug\"", "\"claimed\":\"Safe\"");
        assert_ne!(text, tampered);
        let t2 = write_temp("tampered.trace.json", &tampered);
        let (code, out) = run_ok(&["validate", &t2]);
        assert_eq!(code, 3, "{out}");
        assert!(out.contains("MISMATCH"), "{out}");
    }

    #[test]
    fn validate_rejects_malformed_trace_files() {
        for (name, text) in [
            ("empty.trace.json", ""),
            ("junk.trace.json", "{\"version\":9}"),
            (
                "badsrc.trace.json",
                "{\"version\":1,\"source\":\"fn main() {\",\"clusters\":[]}",
            ),
        ] {
            let f = write_temp(name, text);
            let mut out = String::new();
            assert!(
                run_command(&["validate".into(), f], &mut out).is_err(),
                "{name}"
            );
        }
    }

    #[test]
    fn stats_and_trace_out_report_phases() {
        let f = write_temp("stats.imp", BUGGY);
        let spans_path = write_temp("stats.spans.json", "");
        let (code, out) = run_ok(&["check", &f, "--stats", "--trace-out", &spans_path]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("== phases =="), "{out}");
        assert!(out.contains("attempt"), "{out}");
        assert!(out.contains("== counters =="), "{out}");
        assert!(out.contains("lia.checks"), "{out}");
        assert!(out.contains("== driver =="), "{out}");
        // The span dump round-trips through the hand-rolled parser.
        let text = std::fs::read_to_string(&spans_path).unwrap();
        let parsed = pathslicing::obs::spans_from_json(&text).unwrap();
        assert!(!parsed.is_empty(), "{text}");
        assert!(parsed.iter().any(|s| s.name == "attempt"), "{parsed:?}");
    }

    #[test]
    fn stats_json_is_machine_readable() {
        use pathslicing::obs::json::Json;
        let f = write_temp("statsjson.imp", BUGGY);
        let path = write_temp("statsjson.stats.json", "");
        let (code, _out) = run_ok(&["check", &f, "--stats-json", &path]);
        assert_eq!(code, 1);
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.field("schema").and_then(Json::as_str),
            Some("pathslice-stats/v1")
        );
        assert_eq!(doc.field("exit").and_then(Json::as_i64), Some(1));
        // Field names shared with pathslice-bench/v1 rows.
        let attempt = doc
            .field("phases_us")
            .and_then(|p| p.field("attempt"))
            .expect("attempt phase present");
        for k in ["count", "total_us", "self_us"] {
            assert!(attempt.field(k).and_then(Json::as_i64).is_some(), "{k}");
        }
        assert!(
            doc.field("counters")
                .and_then(|c| c.field("lia.checks"))
                .is_some(),
            "solver counters present"
        );
        assert_eq!(
            doc.field("driver")
                .and_then(|d| d.field("clusters"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert!(doc
            .field("times_s")
            .and_then(|t| t.field("total"))
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn serve_until_drains_on_token_cancel() {
        let token = pathslicing::rt::CancelToken::new();
        let trip = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            trip.cancel();
        });
        let args: Vec<String> = ["--addr", "127.0.0.1:0", "--jobs", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = String::new();
        let code = serve_until(&args, &mut out, &token).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("drained:"), "{out}");
    }

    #[test]
    fn serve_rejects_malformed_flags() {
        let token = pathslicing::rt::CancelToken::new();
        token.cancel();
        for case in [
            vec!["--jobs", "many"],
            vec!["--queue", "-3"],
            vec!["--addr", "not-an-address"],
        ] {
            let args: Vec<String> = case.iter().map(|s| s.to_string()).collect();
            let mut out = String::new();
            assert!(serve_until(&args, &mut out, &token).is_err(), "{case:?}");
        }
    }

    #[test]
    fn parse_peers_accepts_rosters_and_rejects_malformed() {
        let roster = parse_peers("n1=127.0.0.1:7201,n2=127.0.0.1:7202").unwrap();
        assert_eq!(
            roster,
            vec![
                ("n1".to_string(), "127.0.0.1:7201".to_string()),
                ("n2".to_string(), "127.0.0.1:7202".to_string()),
            ]
        );
        // A trailing comma is tolerated; empty segments are skipped.
        assert_eq!(parse_peers("n1=127.0.0.1:7201,").unwrap().len(), 1);
        for bad in ["", ",", "n1", "=127.0.0.1:1", "n1="] {
            assert!(parse_peers(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn route_until_drains_on_token_cancel() {
        let token = pathslicing::rt::CancelToken::new();
        let trip = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            trip.cancel();
        });
        // A roster of one unreachable member: the router must still
        // start (it routes around dead members), then drain cleanly.
        let args: Vec<String> = [
            "--addr",
            "127.0.0.1:0",
            "--peers",
            "n1=127.0.0.1:1",
            "--stats",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = String::new();
        let code = route_until(&args, &mut out, &token).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("drained:"), "{out}");
        assert!(out.contains("== counters =="), "{out}");
    }

    #[test]
    fn fabric_flags_must_be_coherent() {
        let token = pathslicing::rt::CancelToken::new();
        token.cancel();
        // serve: --name and --peers only travel together, and the
        // roster must list this node.
        for case in [
            vec!["--name", "n1"],
            vec!["--peers", "n1=127.0.0.1:1"],
            vec!["--name", "n9", "--peers", "n1=127.0.0.1:1"],
        ] {
            let args: Vec<String> = case.iter().map(|s| s.to_string()).collect();
            let mut out = String::new();
            assert!(serve_until(&args, &mut out, &token).is_err(), "{case:?}");
        }
        // route: a roster is mandatory.
        let mut out = String::new();
        assert!(route_until(&[], &mut out, &token).is_err());
    }

    #[test]
    fn metrics_subcommand_scrapes_a_live_daemon() {
        let server = server::Server::start(server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..server::ServerConfig::default()
        })
        .expect("bind test server");
        let addr = server.local_addr().to_string();

        let (code, out) = run_ok(&["metrics", "--addr", &addr]);
        assert_eq!(code, 0);
        assert!(out.contains("pathslice_server_requests"), "{out}");

        let (code, out) = run_ok(&["metrics", "--addr", &addr, "--json"]);
        assert_eq!(code, 0);
        assert!(out.contains("pathslice-metrics/v1"), "{out}");

        let (code, out) = run_ok(&["metrics", "--addr", &addr, "--slow"]);
        assert_eq!(code, 0);
        assert!(out.contains("pathslice-slowtraces/v1"), "{out}");
        server.shutdown();

        let mut sink = String::new();
        assert!(run_command(
            &["metrics".into(), "--addr".into(), "not an addr".into()],
            &mut sink
        )
        .is_err());
    }

    #[test]
    fn flame_folds_a_span_dump() {
        use pathslicing::obs::SpanRecord;
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "request".into(),
                detail: None,
                depth: 0,
                start_us: 0,
                dur_us: 100,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "attempt".into(),
                detail: None,
                depth: 1,
                start_us: 10,
                dur_us: 60,
            },
        ];
        let f = write_temp("flame.spans.json", &pathslicing::obs::spans_to_json(&spans));
        let (code, out) = run_ok(&["flame", &f]);
        assert_eq!(code, 0);
        assert_eq!(out, "request 40\nrequest;attempt 60\n");

        let bad = write_temp("flame.bad.json", "{\"schema\":\"nope\"}");
        let mut sink = String::new();
        assert!(run_command(&["flame".into(), bad], &mut sink).is_err());
    }

    #[test]
    fn bench_diff_subcommand_gates_on_regressions() {
        use pathslicing::obs::json::Json;
        let mut rep = bench::BenchReport::new("table1", "small");
        rep.rows.push(bench::Row {
            name: "fcron".into(),
            variant: "default".into(),
            fields: vec![("safe".into(), 5), ("errors".into(), 0)],
            ..bench::Row::default()
        });
        let baseline = write_temp("diff.base.json", &rep.to_json().to_text());
        let (code, out) = run_ok(&["bench", "diff", &baseline, &baseline]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("verdict: OK"), "{out}");

        rep.rows[0].fields[1].1 = 1; // errors: 0 -> 1
        let regressed = write_temp("diff.cur.json", &rep.to_json().to_text());
        let (code, out) = run_ok(&["bench", "diff", &baseline, &regressed]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("REGRESSED"), "{out}");

        // The verdict document is machine-readable.
        let verdict = write_temp("diff.verdict.json", "");
        let (code, _out) = run_ok(&[
            "bench",
            "diff",
            &baseline,
            &regressed,
            "--json-out",
            &verdict,
        ]);
        assert_eq!(code, 1);
        let doc = Json::parse(&std::fs::read_to_string(&verdict).unwrap()).unwrap();
        assert_eq!(
            doc.field("schema").and_then(Json::as_str),
            Some("pathslice-benchdiff/v1")
        );

        let mut sink = String::new();
        assert!(run_command(&["bench".into()], &mut sink).is_err());
        assert!(run_command(&["bench".into(), "bogus".into()], &mut sink).is_err());
    }

    #[test]
    fn serve_slow_out_writes_the_trace_ring() {
        let token = pathslicing::rt::CancelToken::new();
        let trip = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            trip.cancel();
        });
        let slow_path = write_temp("serve.slow.json", "");
        let args: Vec<String> = [
            "--addr",
            "127.0.0.1:0",
            "--slow-ms",
            "0",
            "--metrics-every",
            "20",
            "--slow-out",
            &slow_path,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = String::new();
        let code = serve_until(&args, &mut out, &token).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("slow trace(s)"), "{out}");
        let text = std::fs::read_to_string(&slow_path).unwrap();
        assert!(text.contains("pathslice-slowtraces/v1"), "{text}");
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_ok(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn flag_value_forms() {
        let flags = vec![
            "--timeout".to_string(),
            "5".to_string(),
            "--fuel=9".to_string(),
        ];
        assert_eq!(
            flag_value(&flags, "--timeout").unwrap().as_deref(),
            Some("5")
        );
        assert_eq!(flag_value(&flags, "--fuel").unwrap().as_deref(), Some("9"));
        assert_eq!(flag_value(&flags, "--other").unwrap(), None);
    }
}
