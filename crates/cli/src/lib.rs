//! Implementation of the `pathslice` command-line tool.
//!
//! ```text
//! pathslice check <file.imp> [--no-slicing] [--timeout <secs>] [--dfs]
//!                            [--jobs <n>] [--retries <k>]
//!                            [--validate] [--cert <trace.json>]
//!                            [--stats] [--trace-out <spans.json>]
//! pathslice slice <file.imp> [--skip-functions] [--no-early-unsat]
//! pathslice run   <file.imp> [--input v1,v2,...] [--fuel <n>]
//! pathslice dot   <file.imp> [<function>]
//! pathslice validate <trace.json>
//! ```
//!
//! * `check` — CEGAR-verify every error cluster (per-function, §5
//!   methodology) on the fault-tolerant driver and print verdicts; with
//!   a bug, print the witness slice. `--jobs` parallelizes across
//!   clusters; `--retries` enables the budget-escalation ladder.
//!   `--validate` runs the independent certificate validator on every
//!   verdict and downgrades unconfirmed ones to `MISMATCH`; `--cert`
//!   writes the certificates (with the source embedded) to a portable
//!   trace file. `--stats` enables the observability layer and appends
//!   a per-phase timing table plus the metric counters; `--trace-out`
//!   dumps the raw span tree as `pathslice-spans/v1` JSON.
//! * `slice` — take the first abstract error path the checker's
//!   reachability produces and print its path slice with reasons.
//! * `run` — execute the program concretely with the given `nondet()`
//!   inputs.
//! * `dot` — emit Graphviz for a function's CFA.
//! * `validate` — recheck a trace file written by `check --cert`:
//!   recompile the embedded source and revalidate every certificate.
//!
//! All logic lives here (testable); `main.rs` is a thin shim.

use pathslicing::prelude::*;
use pathslicing::rt::Budget;
use std::fmt::Write as _;
use std::time::Duration;

/// Runs one CLI invocation. `args` excludes the binary name. Output is
/// appended to `out`; the return value is the process exit code.
///
/// # Errors
///
/// Returns a message (for stderr) on usage errors, I/O errors, or
/// front-end failures.
pub fn run_command(args: &[String], out: &mut String) -> Result<i32, String> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    match cmd {
        "check" => cmd_check(&args[1..], out),
        "slice" => cmd_slice(&args[1..], out),
        "run" => cmd_run(&args[1..], out),
        "dot" => cmd_dot(&args[1..], out),
        "validate" => cmd_validate(&args[1..], out),
        "help" | "--help" | "-h" => {
            out.push_str(USAGE);
            Ok(0)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
pathslice — path slicing (PLDI 2005) toolchain

USAGE:
    pathslice check <file.imp> [--no-slicing] [--timeout <secs>] [--dfs]
                               [--jobs <n>] [--retries <k>]
                               [--validate] [--cert <trace.json>]
                               [--stats] [--trace-out <spans.json>]
    pathslice slice <file.imp> [--skip-functions] [--no-early-unsat]
    pathslice run   <file.imp> [--input v1,v2,...] [--fuel <n>]
    pathslice dot   <file.imp> [<function>]
    pathslice validate <trace.json>
";

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    compile_source(&src, path).map(|(p, _)| p)
}

fn compile_source(src: &str, origin: &str) -> Result<(Program, String), String> {
    // Front-end errors render with a source snippet and caret.
    let ast = pathslicing::imp::parse(src).map_err(|e| format!("{origin}: {}", e.render(src)))?;
    let program = pathslicing::cfa::lower(&ast).map_err(|e| format!("{origin}: {e}"))?;
    pathslicing::cfa::validate(&program).map_err(|e| format!("{origin}: {e}"))?;
    Ok((program, src.to_owned()))
}

fn cmd_check(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, flags) = split_flags(args)?;
    let stats = flags.iter().any(|f| f == "--stats");
    let trace_out = flag_value(&flags, "--trace-out")?;
    if stats || trace_out.is_some() {
        pathslicing::obs::set_enabled(true);
    }
    let src = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let (program, src) = compile_source(&src, &file)?;
    let mut config = CheckerConfig {
        reducer: if flags.iter().any(|f| f == "--no-slicing") {
            Reducer::Identity
        } else {
            Reducer::path_slice()
        },
        ..CheckerConfig::default()
    };
    if let Some(t) = flag_value(&flags, "--timeout")? {
        config.time_budget = Duration::from_secs(
            t.parse()
                .map_err(|_| format!("bad --timeout value `{t}`"))?,
        );
    }
    if flags.iter().any(|f| f == "--dfs") {
        config.search_order = SearchOrder::Dfs;
    }
    let mut driver = DriverConfig::sequential();
    if let Some(j) = flag_value(&flags, "--jobs")? {
        driver.jobs = j.parse().map_err(|_| format!("bad --jobs value `{j}`"))?;
    }
    if let Some(k) = flag_value(&flags, "--retries")? {
        driver.retry = RetryPolicy::retries(
            k.parse()
                .map_err(|_| format!("bad --retries value `{k}`"))?,
        );
    }
    if flags.iter().any(|f| f == "--validate") {
        // Production validation: an empty fault plan corrupts nothing.
        driver = driver.with_validator(pathslicing::certify::validator(
            pathslicing::rt::FaultPlan::default(),
        ));
    }
    let cert_path = flag_value(&flags, "--cert")?;
    let driver_report = run_clusters(&program, config, &driver);
    if let Some(path) = cert_path {
        let analyses = Analyses::build(&program);
        let trace = pathslicing::certify::certify_report(&analyses, &driver_report, &src);
        std::fs::write(&path, pathslicing::certify::to_json(&trace))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "wrote {} certificate(s) to {path}",
            trace.clusters.len()
        );
    }
    let summary = driver_report.summary();
    let reports = driver_report.into_cluster_reports();
    if reports.is_empty() {
        let _ = writeln!(out, "no error locations — nothing to check");
        emit_obs(out, stats, trace_out.as_deref(), &summary)?;
        return Ok(0);
    }
    let mut worst = 0;
    for r in &reports {
        let verdict = match &r.report.outcome {
            CheckOutcome::Safe => "SAFE".to_owned(),
            CheckOutcome::Bug { .. } => {
                worst = worst.max(1);
                "BUG".to_owned()
            }
            CheckOutcome::Timeout(reason) => {
                worst = worst.max(2);
                format!("TIMEOUT({reason:?})")
            }
            CheckOutcome::InternalError { phase, .. } => {
                worst = worst.max(2);
                format!("INTERNAL({phase})")
            }
            CheckOutcome::CertificateMismatch { claimed, .. } => {
                worst = worst.max(3);
                format!("MISMATCH({claimed})")
            }
        };
        let _ = writeln!(
            out,
            "{:<24} {:>4} site(s)  {:<18} {:>3} refinement(s)  {:?}",
            r.func_name, r.n_sites, verdict, r.report.refinements, r.report.wall
        );
        if let CheckOutcome::Bug { slice, .. } = &r.report.outcome {
            for &e in slice {
                let edge = program.edge(e);
                let _ = writeln!(
                    out,
                    "    {:<16} {}",
                    program.cfa(e.func).name(),
                    program.fmt_op(&edge.op)
                );
            }
        }
        if let CheckOutcome::CertificateMismatch { reason, .. } = &r.report.outcome {
            let _ = writeln!(out, "    certificate rejected: {reason}");
        }
    }
    emit_obs(out, stats, trace_out.as_deref(), &summary)?;
    Ok(worst)
}

/// The `check` epilogue for `--stats` / `--trace-out`: drains the span
/// buffer, optionally dumps it as `pathslice-spans/v1` JSON, and
/// optionally appends the phase-timing table, the counters, and the
/// driver's retry summary.
fn emit_obs(
    out: &mut String,
    stats: bool,
    trace_out: Option<&str>,
    summary: &pathslicing::blastlite::DriverSummary,
) -> Result<(), String> {
    use pathslicing::obs;
    // Surface retries even without --stats: a silently degraded verdict
    // is exactly what a per-run summary exists to catch.
    if summary.retries > 0 && !stats {
        let _ = writeln!(out, "# driver: {summary}");
    }
    if !stats && trace_out.is_none() {
        return Ok(());
    }
    let spans = obs::take_spans();
    if let Some(path) = trace_out {
        std::fs::write(path, obs::spans_to_json(&spans))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "wrote {} span(s) to {path}", spans.len());
    }
    if stats {
        let _ = writeln!(out, "\n== phases ==");
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>12} {:>12}",
            "phase", "count", "total(ms)", "self(ms)"
        );
        for (name, s) in obs::phase_totals(&spans) {
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>12.3} {:>12.3}",
                name,
                s.count,
                s.total_us as f64 / 1000.0,
                s.self_us as f64 / 1000.0
            );
        }
        let _ = writeln!(out, "\n== counters ==");
        for (name, v) in obs::counters() {
            let _ = writeln!(out, "{name:<28} {v:>12}");
        }
        for (name, h) in obs::histograms() {
            let _ = writeln!(out, "{:<28} {:>12} obs, sum {}", name, h.count, h.sum);
        }
        let _ = writeln!(out, "\n== driver ==");
        let _ = writeln!(out, "{summary}");
    }
    Ok(())
}

fn cmd_validate(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, _flags) = split_flags(args)?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let trace = pathslicing::certify::from_json(&text).map_err(|e| format!("{file}: {e}"))?;
    let (program, _) = compile_source(&trace.source, &format!("{file} (embedded source)"))?;
    let analyses = Analyses::build(&program);
    let mut worst = 0;
    for c in &trace.clusters {
        match pathslicing::certify::validate(&analyses, &c.certificate, &c.claimed) {
            Validation::Confirmed { notes } => {
                let _ = writeln!(out, "{:<24} {:<24} VALID", c.func_name, c.claimed);
                for note in notes {
                    let _ = writeln!(out, "    note: {note}");
                }
            }
            Validation::Mismatch { reason } => {
                worst = 3;
                let _ = writeln!(
                    out,
                    "{:<24} {:<24} MISMATCH: {reason}",
                    c.func_name, c.claimed
                );
            }
        }
    }
    if trace.clusters.is_empty() {
        let _ = writeln!(out, "trace file contains no certificates");
    }
    Ok(worst)
}

fn cmd_slice(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, flags) = split_flags(args)?;
    let program = load(&file)?;
    let analyses = Analyses::build(&program);
    let targets: Vec<_> = program
        .cfas()
        .iter()
        .flat_map(|c| c.error_locs().iter().copied())
        .collect();
    if targets.is_empty() {
        return Err("program has no error locations".into());
    }
    let mut pool = pathslicing::blastlite::PredicatePool::new();
    let reach = pathslicing::blastlite::reach::reachable(
        &program,
        &analyses,
        &mut pool,
        &targets,
        1_000_000,
        &Budget::lasting(Duration::from_secs(60)),
        SearchOrder::Dfs,
    );
    let pathslicing::blastlite::reach::ReachResult::ErrorPath { path, .. } = reach else {
        let _ = writeln!(
            out,
            "no abstract path to any error location (program is safe)"
        );
        return Ok(0);
    };
    let options = SliceOptions {
        early_unsat: !flags.iter().any(|f| f == "--no-early-unsat"),
        skip_functions: flags.iter().any(|f| f == "--skip-functions"),
    };
    let result = PathSlicer::new(&analyses).slice(&path, options);
    let _ = writeln!(out, "abstract path: {}", path.stats(&program));
    out.push_str(&render_slice(&program, &path, &result));
    Ok(0)
}

fn cmd_run(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, flags) = split_flags(args)?;
    let program = load(&file)?;
    let inputs: Vec<i64> = match flag_value(&flags, "--input")? {
        Some(list) => list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("bad input value `{s}`"))
            })
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let fuel = match flag_value(&flags, "--fuel")? {
        Some(f) => f.parse().map_err(|_| format!("bad --fuel value `{f}`"))?,
        None => 1_000_000,
    };
    let run = Interp::run(
        &program,
        State::zeroed(&program),
        &mut ReplayOracle::new(inputs),
        fuel,
    );
    let _ = writeln!(out, "executed {} operation(s)", run.path.len());
    match run.outcome {
        ExecOutcome::Completed => {
            let _ = writeln!(out, "outcome: completed");
            Ok(0)
        }
        ExecOutcome::ReachedError(loc) => {
            let _ = writeln!(
                out,
                "outcome: reached ERROR in `{}`",
                program.cfa(loc.func).name()
            );
            Ok(1)
        }
        ExecOutcome::OutOfFuel => {
            let _ = writeln!(out, "outcome: out of fuel (possibly diverging)");
            Ok(2)
        }
        ExecOutcome::Stuck(loc, why) => {
            let _ = writeln!(
                out,
                "outcome: stuck at {loc} in `{}` ({why:?})",
                program.cfa(loc.func).name()
            );
            Ok(2)
        }
    }
}

fn cmd_dot(args: &[String], out: &mut String) -> Result<i32, String> {
    let (file, rest) = split_flags(args)?;
    let program = load(&file)?;
    let cfa = match rest.first() {
        Some(name) => {
            let f = program
                .func_id(name)
                .ok_or_else(|| format!("no function named `{name}`"))?;
            program.cfa(f)
        }
        None => program.cfa(program.main()),
    };
    out.push_str(&program.to_dot(cfa));
    Ok(0)
}

/// Splits `[file, flags...]`, requiring the file first.
fn split_flags(args: &[String]) -> Result<(String, Vec<String>), String> {
    let Some(file) = args.first() else {
        return Err(format!("missing input file\n{USAGE}"));
    };
    if file.starts_with('-') {
        return Err(format!("expected input file, found flag `{file}`\n{USAGE}"));
    }
    Ok((file.clone(), args[1..].to_vec()))
}

/// Looks up `--flag value` in the flag list.
fn flag_value(flags: &[String], name: &str) -> Result<Option<String>, String> {
    for (i, f) in flags.iter().enumerate() {
        if f == name {
            return match flags.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{name} requires a value")),
            };
        }
        if let Some(v) = f.strip_prefix(&format!("{name}=")) {
            return Ok(Some(v.to_owned()));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("pathslice-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    const BUGGY: &str = r#"
        global limit;
        fn main() {
            local amount, w;
            w = 13;
            amount = nondet();
            if (amount > limit) { if (limit == 0) { error(); } }
        }
    "#;

    const SAFE: &str = r#"
        global x;
        fn main() { x = 1; if (x == 2) { error(); } }
    "#;

    fn run_ok(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        let code = run_command(&args, &mut out).unwrap();
        (code, out)
    }

    #[test]
    fn check_reports_bug_with_witness() {
        let f = write_temp("buggy.imp", BUGGY);
        let (code, out) = run_ok(&["check", &f]);
        assert_eq!(code, 1);
        assert!(out.contains("BUG"), "{out}");
        assert!(out.contains("assume"), "witness printed: {out}");
    }

    #[test]
    fn check_reports_safe() {
        let f = write_temp("safe.imp", SAFE);
        let (code, out) = run_ok(&["check", &f]);
        assert_eq!(code, 0);
        assert!(out.contains("SAFE"), "{out}");
    }

    #[test]
    fn slice_prints_reasons() {
        let f = write_temp("buggy2.imp", BUGGY);
        let (code, out) = run_ok(&["slice", &f]);
        assert_eq!(code, 0);
        assert!(out.contains("path slice"), "{out}");
        assert!(out.contains("bypass"), "{out}");
        assert!(
            !out.contains("w :="),
            "irrelevant assignment sliced away: {out}"
        );
    }

    #[test]
    fn run_executes_with_inputs() {
        let f = write_temp("buggy3.imp", BUGGY);
        let (code, out) = run_ok(&["run", &f, "--input", "5"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("reached ERROR"), "{out}");
        let (code, out) = run_ok(&["run", &f, "--input", "-5"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("completed"), "{out}");
    }

    #[test]
    fn dot_emits_graphviz() {
        let f = write_temp("safe2.imp", SAFE);
        let (code, out) = run_ok(&["dot", &f]);
        assert_eq!(code, 0);
        assert!(out.starts_with("digraph"), "{out}");
    }

    #[test]
    fn usage_errors() {
        let mut out = String::new();
        assert!(run_command(&["check".into()], &mut out).is_err());
        assert!(run_command(&["bogus".into()], &mut out).is_err());
        let f = write_temp("bad.imp", "fn main() {");
        assert!(run_command(&["check".into(), f], &mut out).is_err());
    }

    #[test]
    fn malformed_flags_error_out_instead_of_panicking() {
        let f = write_temp("flags.imp", SAFE);
        let cases: &[&[&str]] = &[
            &["check", &f, "--timeout", "abc"],
            &["check", &f, "--timeout"],
            &["check", &f, "--jobs", "-1"],
            &["check", &f, "--retries", "many"],
            &["run", &f, "--fuel", "1e9"],
            &["run", &f, "--input", "1,x,3"],
            &["check", "/no/such/file.imp"],
        ];
        for case in cases {
            let args: Vec<String> = case.iter().map(|s| s.to_string()).collect();
            let mut out = String::new();
            assert!(run_command(&args, &mut out).is_err(), "{case:?}");
        }
    }

    #[test]
    fn hostile_sources_error_out_instead_of_panicking() {
        let cases = [
            (
                "overflow.imp",
                "fn main() { local x; x = 99999999999999999999; }",
            ),
            ("nonascii.imp", "fn mäin() { }"),
            ("truncated.imp", "fn main() { if (x"),
            ("empty.imp", ""),
        ];
        for (name, src) in cases {
            let f = write_temp(name, src);
            let mut out = String::new();
            assert!(
                run_command(&["check".into(), f], &mut out).is_err(),
                "{name} should be a front-end error"
            );
        }
    }

    #[test]
    fn check_jobs_and_retries_match_sequential_verdicts() {
        let f = write_temp("par.imp", BUGGY);
        let (seq_code, seq_out) = run_ok(&["check", &f]);
        let (par_code, par_out) = run_ok(&["check", &f, "--jobs", "4", "--retries", "2"]);
        assert_eq!(seq_code, par_code);
        // Strip the wall-clock column (last field) before comparing.
        let verdicts = |s: &str| {
            s.lines()
                .map(|l| {
                    l.rsplit_once("  ")
                        .map_or(l.to_owned(), |(v, _)| v.to_owned())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&seq_out), verdicts(&par_out));
    }

    #[test]
    fn check_validate_confirms_both_verdict_kinds() {
        let f = write_temp("validated.imp", BUGGY);
        let (code, out) = run_ok(&["check", &f, "--validate"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("BUG"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");

        let f = write_temp("validated_safe.imp", SAFE);
        let (code, out) = run_ok(&["check", &f, "--validate"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("SAFE"), "{out}");
    }

    #[test]
    fn cert_roundtrip_through_validate_subcommand() {
        let f = write_temp("certified.imp", BUGGY);
        let trace = write_temp("certified.trace.json", "");
        let (code, out) = run_ok(&["check", &f, "--cert", &trace]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("wrote 1 certificate(s)"), "{out}");

        let (code, out) = run_ok(&["validate", &trace]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("VALID"), "{out}");

        // Tamper with the claimed verdict: the validator must object.
        let text = std::fs::read_to_string(&trace).unwrap();
        let tampered = text.replace("\"claimed\":\"Bug\"", "\"claimed\":\"Safe\"");
        assert_ne!(text, tampered);
        let t2 = write_temp("tampered.trace.json", &tampered);
        let (code, out) = run_ok(&["validate", &t2]);
        assert_eq!(code, 3, "{out}");
        assert!(out.contains("MISMATCH"), "{out}");
    }

    #[test]
    fn validate_rejects_malformed_trace_files() {
        for (name, text) in [
            ("empty.trace.json", ""),
            ("junk.trace.json", "{\"version\":9}"),
            (
                "badsrc.trace.json",
                "{\"version\":1,\"source\":\"fn main() {\",\"clusters\":[]}",
            ),
        ] {
            let f = write_temp(name, text);
            let mut out = String::new();
            assert!(
                run_command(&["validate".into(), f], &mut out).is_err(),
                "{name}"
            );
        }
    }

    #[test]
    fn stats_and_trace_out_report_phases() {
        let f = write_temp("stats.imp", BUGGY);
        let spans_path = write_temp("stats.spans.json", "");
        let (code, out) = run_ok(&["check", &f, "--stats", "--trace-out", &spans_path]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("== phases =="), "{out}");
        assert!(out.contains("attempt"), "{out}");
        assert!(out.contains("== counters =="), "{out}");
        assert!(out.contains("lia.checks"), "{out}");
        assert!(out.contains("== driver =="), "{out}");
        // The span dump round-trips through the hand-rolled parser.
        let text = std::fs::read_to_string(&spans_path).unwrap();
        let parsed = pathslicing::obs::spans_from_json(&text).unwrap();
        assert!(!parsed.is_empty(), "{text}");
        assert!(parsed.iter().any(|s| s.name == "attempt"), "{parsed:?}");
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_ok(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn flag_value_forms() {
        let flags = vec![
            "--timeout".to_string(),
            "5".to_string(),
            "--fuel=9".to_string(),
        ];
        assert_eq!(
            flag_value(&flags, "--timeout").unwrap().as_deref(),
            Some("5")
        );
        assert_eq!(flag_value(&flags, "--fuel").unwrap().as_deref(), Some("9"));
        assert_eq!(flag_value(&flags, "--other").unwrap(), None);
    }
}
