//! Portable trace files: a hand-rolled JSON emitter/parser for
//! certificates (the workspace builds offline, so no serde).
//!
//! A trace file embeds the *source program* alongside the certificates:
//! `pathslice validate <trace.json>` recompiles the source, rebuilds the
//! analyses, and revalidates every certificate against them — the file
//! is self-contained evidence, not a pointer into someone's checkout.

use crate::{
    BugCertificate, Certificate, DegradedCertificate, LedgerEntry, RoundEvidence, SafeCertificate,
};
use cfa::{EdgeId, FuncId, VarId};
use obs::json::Json;
pub use obs::json::JsonError;

/// One cluster's claimed verdict plus its certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterCert {
    /// The cluster (function) name.
    pub func_name: String,
    /// The verdict label the certificate supports.
    pub claimed: String,
    /// The evidence.
    pub certificate: Certificate,
}

/// A self-contained certificate file: source program + per-cluster
/// certificates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// The program source the verdicts are about.
    pub source: String,
    /// One entry per checked cluster.
    pub clusters: Vec<ClusterCert>,
}

// ---------------------------------------------------------------------
// Certificate <-> Json
// ---------------------------------------------------------------------

fn edge_json(e: EdgeId) -> Json {
    Json::Arr(vec![Json::Num(e.func.0 as i64), Json::Num(e.idx as i64)])
}

fn edges_json(es: &[EdgeId]) -> Json {
    Json::Arr(es.iter().map(|&e| edge_json(e)).collect())
}

fn cert_json(cert: &Certificate) -> Json {
    match cert {
        Certificate::Bug(b) => Json::Obj(vec![
            ("kind".into(), Json::Str("bug".into())),
            ("path".into(), edges_json(&b.path)),
            ("slice".into(), edges_json(&b.slice)),
            (
                "initial".into(),
                Json::Arr(
                    b.initial
                        .iter()
                        .map(|&(v, val)| Json::Arr(vec![Json::Num(v.0 as i64), Json::Num(val)]))
                        .collect(),
                ),
            ),
            (
                "havoc".into(),
                Json::Arr(
                    b.havoc
                        .iter()
                        .map(|&(e, val)| {
                            Json::Arr(vec![
                                Json::Num(e.func.0 as i64),
                                Json::Num(e.idx as i64),
                                Json::Num(val),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Certificate::Safe(s) => Json::Obj(vec![
            ("kind".into(), Json::Str("safe".into())),
            (
                "rounds".into(),
                Json::Arr(
                    s.rounds
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("slice".into(), edges_json(&r.slice)),
                                (
                                    "core".into(),
                                    Json::Arr(
                                        r.core.iter().map(|&i| Json::Num(i as i64)).collect(),
                                    ),
                                ),
                                ("complete".into(), Json::Bool(r.complete)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Certificate::Degraded(d) => Json::Obj(vec![
            ("kind".into(), Json::Str("degraded".into())),
            ("verdict".into(), Json::Str(d.verdict.clone())),
            (
                "ledger".into(),
                Json::Arr(
                    d.ledger
                        .iter()
                        .map(|l| {
                            Json::Obj(vec![
                                ("attempt".into(), Json::Num(l.attempt as i64)),
                                ("budget_ms".into(), Json::Num(l.budget_ms as i64)),
                                ("reducer".into(), Json::Str(l.reducer.clone())),
                                ("outcome".into(), Json::Str(l.outcome.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Renders a trace file as JSON.
pub fn to_json(file: &TraceFile) -> String {
    let doc = Json::Obj(vec![
        ("version".into(), Json::Num(1)),
        ("source".into(), Json::Str(file.source.clone())),
        (
            "clusters".into(),
            Json::Arr(
                file.clusters
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("func".into(), Json::Str(c.func_name.clone())),
                            ("claimed".into(), Json::Str(c.claimed.clone())),
                            ("certificate".into(), cert_json(&c.certificate)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut out = String::new();
    doc.emit(&mut out);
    out.push('\n');
    out
}

fn want_str(j: Option<&Json>, what: &str) -> Result<String, JsonError> {
    match j {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(JsonError {
            message: format!("expected string field `{what}`"),
            at: 0,
        }),
    }
}

fn want_num(j: &Json, what: &str) -> Result<i64, JsonError> {
    match j {
        Json::Num(n) => Ok(*n),
        _ => Err(JsonError {
            message: format!("expected number in `{what}`"),
            at: 0,
        }),
    }
}

fn want_arr<'a>(j: Option<&'a Json>, what: &str) -> Result<&'a [Json], JsonError> {
    match j {
        Some(Json::Arr(items)) => Ok(items),
        _ => Err(JsonError {
            message: format!("expected array field `{what}`"),
            at: 0,
        }),
    }
}

fn edge_from(j: &Json, what: &str) -> Result<EdgeId, JsonError> {
    match j {
        Json::Arr(pair) if pair.len() == 2 => Ok(EdgeId {
            func: FuncId(want_num(&pair[0], what)? as u32),
            idx: want_num(&pair[1], what)? as u32,
        }),
        _ => Err(JsonError {
            message: format!("expected [func, idx] pair in `{what}`"),
            at: 0,
        }),
    }
}

fn edges_from(j: Option<&Json>, what: &str) -> Result<Vec<EdgeId>, JsonError> {
    want_arr(j, what)?
        .iter()
        .map(|e| edge_from(e, what))
        .collect()
}

fn cert_from(j: &Json) -> Result<Certificate, JsonError> {
    let kind = want_str(j.field("kind"), "kind")?;
    match kind.as_str() {
        "bug" => {
            let initial = want_arr(j.field("initial"), "initial")?
                .iter()
                .map(|p| match p {
                    Json::Arr(kv) if kv.len() == 2 => Ok((
                        VarId(want_num(&kv[0], "initial")? as u32),
                        want_num(&kv[1], "initial")?,
                    )),
                    _ => Err(JsonError {
                        message: "expected [var, value] pair in `initial`".into(),
                        at: 0,
                    }),
                })
                .collect::<Result<_, _>>()?;
            let havoc = want_arr(j.field("havoc"), "havoc")?
                .iter()
                .map(|t| match t {
                    Json::Arr(kv) if kv.len() == 3 => Ok((
                        EdgeId {
                            func: FuncId(want_num(&kv[0], "havoc")? as u32),
                            idx: want_num(&kv[1], "havoc")? as u32,
                        },
                        want_num(&kv[2], "havoc")?,
                    )),
                    _ => Err(JsonError {
                        message: "expected [func, idx, value] triple in `havoc`".into(),
                        at: 0,
                    }),
                })
                .collect::<Result<_, _>>()?;
            Ok(Certificate::Bug(BugCertificate {
                func_name: String::new(), // patched by the caller
                path: edges_from(j.field("path"), "path")?,
                slice: edges_from(j.field("slice"), "slice")?,
                initial,
                havoc,
            }))
        }
        "safe" => {
            let rounds = want_arr(j.field("rounds"), "rounds")?
                .iter()
                .map(|r| {
                    let core = want_arr(r.field("core"), "core")?
                        .iter()
                        .map(|n| want_num(n, "core").map(|n| n as usize))
                        .collect::<Result<_, _>>()?;
                    let complete = match r.field("complete") {
                        Some(Json::Bool(b)) => *b,
                        _ => {
                            return Err(JsonError {
                                message: "expected bool field `complete`".into(),
                                at: 0,
                            })
                        }
                    };
                    Ok(RoundEvidence {
                        slice: edges_from(r.field("slice"), "slice")?,
                        core,
                        complete,
                    })
                })
                .collect::<Result<_, _>>()?;
            Ok(Certificate::Safe(SafeCertificate {
                func_name: String::new(),
                rounds,
            }))
        }
        "degraded" => {
            let ledger = want_arr(j.field("ledger"), "ledger")?
                .iter()
                .map(|l| {
                    Ok(LedgerEntry {
                        attempt: want_num(l.field("attempt").unwrap_or(&Json::Num(-1)), "attempt")?
                            as usize,
                        budget_ms: want_num(
                            l.field("budget_ms").unwrap_or(&Json::Num(-1)),
                            "budget_ms",
                        )? as u64,
                        reducer: want_str(l.field("reducer"), "reducer")?,
                        outcome: want_str(l.field("outcome"), "outcome")?,
                    })
                })
                .collect::<Result<_, _>>()?;
            Ok(Certificate::Degraded(DegradedCertificate {
                func_name: String::new(),
                verdict: want_str(j.field("verdict"), "verdict")?,
                ledger,
            }))
        }
        other => Err(JsonError {
            message: format!("unknown certificate kind `{other}`"),
            at: 0,
        }),
    }
}

/// Parses a trace file.
///
/// # Errors
///
/// [`JsonError`] on malformed JSON or a document that does not match
/// the trace-file schema (unknown version, missing fields, wrong
/// types).
pub fn from_json(text: &str) -> Result<TraceFile, JsonError> {
    let doc = Json::parse(text)?;
    match doc.field("version") {
        Some(Json::Num(1)) => {}
        _ => {
            return Err(JsonError {
                message: "unsupported trace file version".into(),
                at: 0,
            })
        }
    }
    let source = want_str(doc.field("source"), "source")?;
    let clusters = want_arr(doc.field("clusters"), "clusters")?
        .iter()
        .map(|c| {
            let func_name = want_str(c.field("func"), "func")?;
            let claimed = want_str(c.field("claimed"), "claimed")?;
            let mut certificate = cert_from(c.field("certificate").ok_or_else(|| JsonError {
                message: "missing field `certificate`".into(),
                at: 0,
            })?)?;
            match &mut certificate {
                Certificate::Bug(b) => b.func_name = func_name.clone(),
                Certificate::Safe(s) => s.func_name = func_name.clone(),
                Certificate::Degraded(d) => d.func_name = func_name.clone(),
            }
            Ok(ClusterCert {
                func_name,
                claimed,
                certificate,
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(TraceFile { source, clusters })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceFile {
        TraceFile {
            source: "global x;\nfn main() { x = 1; }\n\"quoted\"\t".to_owned(),
            clusters: vec![
                ClusterCert {
                    func_name: "main".into(),
                    claimed: "Bug".into(),
                    certificate: Certificate::Bug(BugCertificate {
                        func_name: "main".into(),
                        path: vec![EdgeId {
                            func: FuncId(0),
                            idx: 3,
                        }],
                        slice: vec![EdgeId {
                            func: FuncId(0),
                            idx: 3,
                        }],
                        initial: vec![(VarId(2), -7)],
                        havoc: vec![(
                            EdgeId {
                                func: FuncId(0),
                                idx: 1,
                            },
                            42,
                        )],
                    }),
                },
                ClusterCert {
                    func_name: "aux".into(),
                    claimed: "Safe".into(),
                    certificate: Certificate::Safe(SafeCertificate {
                        func_name: "aux".into(),
                        rounds: vec![RoundEvidence {
                            slice: vec![EdgeId {
                                func: FuncId(1),
                                idx: 0,
                            }],
                            core: vec![0],
                            complete: true,
                        }],
                    }),
                },
                ClusterCert {
                    func_name: "slow".into(),
                    claimed: "Timeout(WallClock)".into(),
                    certificate: Certificate::Degraded(DegradedCertificate {
                        func_name: "slow".into(),
                        verdict: "Timeout(WallClock)".into(),
                        ledger: vec![LedgerEntry {
                            attempt: 0,
                            budget_ms: 1000,
                            reducer: "PathSlice(..)".into(),
                            outcome: "Timeout(WallClock)".into(),
                        }],
                    }),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let file = sample();
        let text = to_json(&file);
        let back = from_json(&text).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "nope",
            "{\"version\":2,\"source\":\"\",\"clusters\":[]}",
            "{\"version\":1,\"source\":\"\",\"clusters\":[{\"func\":\"f\"}]}",
            "{\"version\":1,\"source\":\"\",\"clusters\":[]}trailing",
            "{\"version\":1,\"source\":\"\\q\",\"clusters\":[]}",
            "{\"version\":1,\"source\":\"\",\"clusters\":[{\"func\":\"f\",\"claimed\":\"Bug\",\
             \"certificate\":{\"kind\":\"mystery\"}}]}",
        ] {
            assert!(from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let mut file = sample();
        file.source = "π ≈ 3.14159 \\ \"quote\" \u{1}".to_owned();
        let back = from_json(&to_json(&file)).unwrap();
        assert_eq!(back.source, file.source);
    }
}
