//! `certify` — self-validating verdicts.
//!
//! Every [`blastlite`] verdict can be packaged as a *certificate*: a
//! machine-checkable evidence payload that an **independent validator**
//! replays with none of the checker's machinery. The checker decides
//! reachability with predicate abstraction over an SSA trace encoding;
//! the validator re-derives each claim with the *other* semantics the
//! workspace already has — the concrete interpreter for bug witnesses
//! and a fresh solver context (plus the substitution-based `WP` of
//! Fig. 3 where it is exact) for safety refutations — so a bug in the
//! shared machinery cannot vouch for itself.
//!
//! * [`CheckOutcome::Bug`] ⟶ [`BugCertificate`]: the abstract path, the
//!   slice, and a concretized witness (initial state + per-edge havoc
//!   oracle from [`semantics::concretize`]). Validation replays the
//!   slice through [`semantics::State::step`] and confirms the slice
//!   actually ends at an error location of the claimed cluster.
//! * [`CheckOutcome::Safe`] ⟶ [`SafeCertificate`]: per refinement
//!   round, the sliced operation sequence and the deletion-minimized
//!   LIA unsat core. Validation re-encodes the slice fresh, selects the
//!   core constraints, and refutes them in a fresh solver context; a
//!   round whose core minimization was cut short (`complete = false`)
//!   is rejected outright — a partial core is not a proof.
//! * [`CheckOutcome::Timeout`] / [`CheckOutcome::InternalError`] ⟶
//!   [`DegradedCertificate`]: the failing phase and the driver's budget
//!   ledger, so degraded verdicts are auditable (which budget ran out,
//!   after how many attempts) even though they prove nothing.
//!
//! [`validator`] packages build + validate as a
//! [`blastlite::ClusterValidator`] for the driver's `--validate` mode:
//! any evidence the validator cannot confirm downgrades the verdict to
//! [`CheckOutcome::CertificateMismatch`] — a wrong answer is *reported*,
//! never silently trusted. The deterministic certificate-corruption
//! sites ([`FaultSite::CertWitness`], [`FaultSite::CertCore`],
//! [`FaultSite::CertSlice`]) let the chaos suite prove the validator
//! catches exactly the corrupted clusters.
//!
//! # Worked example
//!
//! Check a one-cluster program, certify the verdict, and validate the
//! certificate independently:
//!
//! ```
//! use blastlite::{run_clusters, CheckerConfig, DriverConfig};
//! use certify::{certify_cluster, validate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "global a; fn main() { if (a > 0) { error(); } }";
//! let program = cfa::lower(&imp::parse(src)?)?;
//! let analyses = dataflow::Analyses::build(&program);
//!
//! let report = run_clusters(&program, CheckerConfig::default(), &DriverConfig::sequential());
//! let cluster = &report.clusters[0];
//! assert!(cluster.cluster.report.outcome.is_bug());
//!
//! let cert = certify_cluster(&analyses, cluster)?;
//! let verdict = validate(&analyses, &cert, &cluster.cluster.report.outcome.kind_label());
//! assert!(verdict.is_confirmed());
//! # Ok(())
//! # }
//! ```

use blastlite::{CheckOutcome, ClusterValidator, DriverClusterReport, DriverReport};
use cfa::{CBool, CLval, EdgeId, Op, Program, VarId};
use dataflow::Analyses;
use lia::{Formula, Solver};
use rt::{FaultPlan, FaultSite};
use semantics::wp::{cbool_to_formula, cexpr_to_term};
use semantics::{
    concretize, replay_with_fallback, ConcretizeError, ExecOutcome, State, TraceEncoder, Witness,
};
use std::collections::HashMap;
use std::sync::Arc;

pub mod json;

pub use json::{from_json, to_json, ClusterCert, JsonError, TraceFile};

/// Fuel for the advisory whole-program replay of a bug witness.
const REPLAY_FUEL: usize = 200_000;

/// Evidence for one cluster verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// Evidence for a `Bug` verdict.
    Bug(BugCertificate),
    /// Evidence for a `Safe` verdict.
    Safe(SafeCertificate),
    /// Audit trail for a verdict that proves nothing (`Timeout`,
    /// `InternalError`, or an already-downgraded mismatch).
    Degraded(DegradedCertificate),
}

impl Certificate {
    /// The cluster (function) name the certificate is about.
    pub fn func_name(&self) -> &str {
        match self {
            Certificate::Bug(b) => &b.func_name,
            Certificate::Safe(s) => &s.func_name,
            Certificate::Degraded(d) => &d.func_name,
        }
    }
}

/// A concretized error witness: enough to re-run the bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugCertificate {
    /// The cluster (function) whose error location is reached.
    pub func_name: String,
    /// The abstract counterexample path.
    pub path: Vec<EdgeId>,
    /// The reduced witness (must be a subsequence of `path` ending at an
    /// error location of the cluster).
    pub slice: Vec<EdgeId>,
    /// Non-zero cells of the concretized initial state.
    pub initial: Vec<(VarId, i64)>,
    /// The `nondet()` value drawn at each havoc edge of the slice.
    pub havoc: Vec<(EdgeId, i64)>,
}

/// One refinement round's refutation evidence (mirrors
/// [`blastlite::RefutationRound`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundEvidence {
    /// The sliced operation sequence of the refuted counterexample.
    pub slice: Vec<EdgeId>,
    /// Indices (into `slice`, forward order) of the operations whose
    /// constraints form the unsat core.
    pub core: Vec<usize>,
    /// Whether core minimization ran to completion. Partial cores are
    /// rejected by the validator.
    pub complete: bool,
}

/// Per-round refutation evidence backing a `Safe` verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafeCertificate {
    /// The cluster (function) proven safe.
    pub func_name: String,
    /// One entry per refuted abstract counterexample. May be empty when
    /// abstract reachability never produced a counterexample.
    pub rounds: Vec<RoundEvidence>,
}

/// One driver attempt, as recorded in a degraded verdict's ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// 0-based attempt index.
    pub attempt: usize,
    /// The wall-clock budget the attempt ran under, in milliseconds.
    pub budget_ms: u64,
    /// The reducer used (rendered).
    pub reducer: String,
    /// The attempt's outcome label.
    pub outcome: String,
}

/// The audit trail of a verdict that proves nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedCertificate {
    /// The cluster (function) the check gave up on.
    pub func_name: String,
    /// The final verdict label (includes the timeout reason or failing
    /// phase, e.g. `Timeout(WallClock)` or `InternalError(solve)`).
    pub verdict: String,
    /// The driver's attempt ledger, in attempt order.
    pub ledger: Vec<LedgerEntry>,
}

/// Why a certificate could not be built from a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// The bug witness could not be concretized.
    Concretize(ConcretizeError),
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::Concretize(e) => write!(f, "witness concretization failed: {e}"),
        }
    }
}

impl std::error::Error for CertifyError {}

/// The validator's verdict on a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validation {
    /// Every check the validator could decide passed. `notes` records
    /// advisory observations (e.g. a replay that was inconclusive
    /// because an operation left the exact fragment).
    Confirmed {
        /// Advisory observations.
        notes: Vec<String>,
    },
    /// The evidence does not support the claimed verdict.
    Mismatch {
        /// What failed.
        reason: String,
    },
}

impl Validation {
    /// Whether the certificate was confirmed.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, Validation::Confirmed { .. })
    }
}

fn ledger_of(cluster: &DriverClusterReport) -> Vec<LedgerEntry> {
    cluster
        .attempts
        .iter()
        .map(|a| LedgerEntry {
            attempt: a.attempt,
            budget_ms: a.time_budget.as_millis().min(u64::MAX as u128) as u64,
            reducer: format!("{:?}", a.reducer),
            outcome: a.outcome.kind_label(),
        })
        .collect()
}

/// Builds the certificate for one cluster's final verdict.
///
/// # Errors
///
/// [`CertifyError::Concretize`] when a `Bug` verdict's slice cannot be
/// concretized — which is itself a red flag the caller should surface
/// (the driver's `--validate` mode downgrades it to a mismatch).
pub fn certify_cluster(
    analyses: &Analyses<'_>,
    cluster: &DriverClusterReport,
) -> Result<Certificate, CertifyError> {
    let _span = obs::span!("certify", "cluster {}", cluster.cluster.func_name);
    obs::counter("cert.certificates_built").inc();
    let program = analyses.program();
    let func_name = cluster.cluster.func_name.clone();
    match &cluster.cluster.report.outcome {
        CheckOutcome::Bug { path, slice } => {
            let witness =
                concretize(program, analyses.alias(), slice).map_err(CertifyError::Concretize)?;
            let initial = (0..program.vars().len())
                .map(|i| VarId(i as u32))
                .filter_map(|v| {
                    let val = witness.initial.get(v);
                    (val != 0).then_some((v, val))
                })
                .collect();
            let mut havoc: Vec<(EdgeId, i64)> = witness.havoc_values.into_iter().collect();
            havoc.sort_unstable_by_key(|(e, _)| (e.func.0, e.idx));
            Ok(Certificate::Bug(BugCertificate {
                func_name,
                path: path.edges().to_vec(),
                slice: slice.clone(),
                initial,
                havoc,
            }))
        }
        CheckOutcome::Safe => Ok(Certificate::Safe(SafeCertificate {
            func_name,
            rounds: cluster
                .cluster
                .report
                .rounds
                .iter()
                .map(|r| RoundEvidence {
                    slice: r.slice.clone(),
                    core: r.core.clone(),
                    complete: r.core_complete,
                })
                .collect(),
        })),
        outcome => Ok(Certificate::Degraded(DegradedCertificate {
            func_name,
            verdict: outcome.kind_label(),
            ledger: ledger_of(cluster),
        })),
    }
}

/// Deterministically corrupts a certificate at the plan's
/// certificate-corruption sites, keyed by the cluster name. Returns a
/// description per corruption actually applied, so a chaos test can
/// compute the exact set of clusters whose certificates changed.
pub fn corrupt(cert: &mut Certificate, plan: &FaultPlan) -> Vec<String> {
    let mut applied = Vec::new();
    match cert {
        Certificate::Bug(b) => {
            if plan.fire(FaultSite::CertWitness, &b.func_name).is_some() && !b.slice.is_empty() {
                let dropped = b.slice.pop().expect("checked non-empty");
                b.havoc.retain(|(e, _)| *e != dropped);
                applied.push(format!(
                    "truncated witness of `{}` (dropped {dropped})",
                    b.func_name
                ));
            }
            // Reversal is only a corruption when it changes the sequence.
            if plan.fire(FaultSite::CertSlice, &b.func_name).is_some()
                && b.slice.len() >= 2
                && b.slice.first() != b.slice.last()
            {
                b.slice.reverse();
                applied.push(format!("permuted slice of `{}`", b.func_name));
            }
        }
        Certificate::Safe(s) => {
            if plan.fire(FaultSite::CertCore, &s.func_name).is_some() {
                if let Some(r) = s.rounds.iter_mut().rev().find(|r| !r.core.is_empty()) {
                    let dropped = r.core.pop().expect("checked non-empty");
                    applied.push(format!(
                        "dropped core atom {dropped} from a round of `{}`",
                        s.func_name
                    ));
                }
            }
        }
        Certificate::Degraded(_) => {}
    }
    applied
}

/// Validates a certificate against the program, independently of the
/// checker that produced it. `claimed` is the verdict label the
/// certificate is supposed to support
/// ([`CheckOutcome::kind_label`]-style).
pub fn validate(analyses: &Analyses<'_>, cert: &Certificate, claimed: &str) -> Validation {
    obs::counter("cert.validations").inc();
    let v = validate_inner(analyses, cert, claimed);
    if matches!(v, Validation::Mismatch { .. }) {
        obs::counter("cert.mismatches").inc();
    }
    v
}

fn validate_inner(analyses: &Analyses<'_>, cert: &Certificate, claimed: &str) -> Validation {
    match cert {
        Certificate::Bug(b) => {
            if claimed != "Bug" {
                return mismatch(format!("bug certificate attached to a `{claimed}` verdict"));
            }
            validate_bug(analyses, b)
        }
        Certificate::Safe(s) => {
            if claimed != "Safe" {
                return mismatch(format!(
                    "safety certificate attached to a `{claimed}` verdict"
                ));
            }
            validate_safe(analyses, s)
        }
        Certificate::Degraded(d) => validate_degraded(d, claimed),
    }
}

fn mismatch(reason: String) -> Validation {
    Validation::Mismatch { reason }
}

fn edge_in_program(program: &Program, e: EdgeId) -> bool {
    e.func.index() < program.cfas().len() && (e.idx as usize) < program.cfa(e.func).edges().len()
}

/// Whether replaying `op` through [`State::step`] is *exact* with
/// respect to the constraint semantics the witness was solved under: a
/// stuck result on an exact operation refutes the certificate, while an
/// inexact one (dereferences, array stores, non-linear arithmetic —
/// exactly where the encoder is weak, §5 "Limitations") merely ends the
/// replay inconclusively.
fn op_is_exact(op: &Op) -> bool {
    match op {
        Op::Assign(CLval::Var(_), e) => cexpr_to_term(e).is_some(),
        Op::Assign(..) | Op::ArrStore(..) => false,
        Op::Havoc(CLval::Var(_)) => true,
        Op::Havoc(..) => false,
        Op::Assume(b) => cbool_to_formula(b).is_some(),
        Op::Call(_) | Op::Return => true,
    }
}

fn validate_bug(analyses: &Analyses<'_>, cert: &BugCertificate) -> Validation {
    let program = analyses.program();
    let Some(func) = program.func_id(&cert.func_name) else {
        return mismatch(format!("unknown cluster function `{}`", cert.func_name));
    };
    if cert.slice.is_empty() {
        return mismatch("empty slice".to_owned());
    }
    for &e in cert.path.iter().chain(&cert.slice) {
        if !edge_in_program(program, e) {
            return mismatch(format!("edge {e} does not exist in the program"));
        }
    }
    if !slicer::is_subsequence(&cert.slice, &cert.path) {
        return mismatch("slice is not a subsequence of the claimed path".to_owned());
    }
    let last = *cert.slice.last().expect("checked non-empty");
    let hits = program.edge(last).dst;
    if hits.func != func || !program.cfa(func).error_locs().contains(&hits) {
        return mismatch(format!(
            "slice ends at {hits}, not an error location of `{}`",
            cert.func_name
        ));
    }

    // Rebuild the witness and replay the *slice* operations concretely.
    // The completeness theorem (§3.2) promises the slice is executable
    // from any state satisfying its weakest precondition; the solver
    // model is such a state, so every exact operation must step.
    let mut state = State::zeroed(program);
    for &(v, val) in &cert.initial {
        if v.index() >= program.vars().len() {
            return mismatch(format!("witness binds unknown variable id {}", v.0));
        }
        state.set(v, val);
    }
    let havoc: HashMap<EdgeId, i64> = cert.havoc.iter().copied().collect();
    // One value per havoc edge cannot distinguish loop iterations; only
    // treat a stuck replay as refuting when the slice is iteration-free.
    let mut sorted = cert.slice.clone();
    sorted.sort_unstable_by_key(|e| (e.func.0, e.idx));
    sorted.dedup();
    let repeats_edges = sorted.len() != cert.slice.len();
    let mut notes = Vec::new();
    for &eid in &cert.slice {
        let op = &program.edge(eid).op;
        if matches!(op, Op::Havoc(_)) && !havoc.contains_key(&eid) {
            return mismatch(format!("missing oracle value for havoc edge {eid}"));
        }
        match state.step(op, || havoc.get(&eid).copied().unwrap_or(0)) {
            Ok(()) => {}
            Err(stuck) => {
                if op_is_exact(op) && !repeats_edges {
                    return mismatch(format!(
                        "witness replay of the slice got stuck at {eid} ({stuck:?})"
                    ));
                }
                notes.push(format!(
                    "slice replay inconclusive at {eid} ({stuck:?}, outside the exact fragment)"
                ));
                break;
            }
        }
    }

    // Advisory whole-program replay. A feasible slice guarantees only
    // that some path *variant* reaches the target (§3.2 — "reaches the
    // target or diverges"), and unconstrained `nondet()` edges of the
    // full program may steer into unrelated error sites first, so this
    // never hard-fails the certificate.
    let witness = Witness {
        initial: state_from(program, &cert.initial),
        havoc_values: havoc,
    };
    let run = replay_with_fallback(program, &witness, 0, REPLAY_FUEL);
    match run.outcome {
        ExecOutcome::ReachedError(loc) if loc.func == func => {
            notes.push("whole-program replay reached the target".to_owned());
        }
        other => notes.push(format!(
            "whole-program replay was advisory only (ended with {other:?})"
        )),
    }
    Validation::Confirmed { notes }
}

fn state_from(program: &Program, initial: &[(VarId, i64)]) -> State {
    let mut st = State::zeroed(program);
    for &(v, val) in initial {
        st.set(v, val);
    }
    st
}

fn validate_safe(analyses: &Analyses<'_>, cert: &SafeCertificate) -> Validation {
    let program = analyses.program();
    if program.func_id(&cert.func_name).is_none() {
        return mismatch(format!("unknown cluster function `{}`", cert.func_name));
    }
    let mut notes = Vec::new();
    if cert.rounds.is_empty() {
        notes.push("no refinement rounds: safety rests on abstract reachability alone".to_owned());
    }
    for (ri, round) in cert.rounds.iter().enumerate() {
        if !round.complete {
            return mismatch(format!(
                "round {ri}: partial unsat core (minimization was cut short) is not a proof"
            ));
        }
        if round.core.is_empty() {
            return mismatch(format!("round {ri}: empty unsat core"));
        }
        for &e in &round.slice {
            if !edge_in_program(program, e) {
                return mismatch(format!(
                    "round {ri}: edge {e} does not exist in the program"
                ));
            }
        }
        if round.core.windows(2).any(|w| w[0] >= w[1]) {
            return mismatch(format!("round {ri}: core indices not strictly increasing"));
        }
        if round.core.last().copied().unwrap_or(0) >= round.slice.len() {
            return mismatch(format!("round {ri}: core index out of slice bounds"));
        }

        // Re-encode the slice with a fresh encoder, pick out exactly the
        // constraints the core names, and refute them in a fresh solver
        // context.
        let ops: Vec<&Op> = round.slice.iter().map(|&e| &program.edge(e).op).collect();
        let mut enc = TraceEncoder::new(analyses.alias());
        let mut constraint_of: HashMap<usize, Formula> = HashMap::new();
        for (i, op) in ops.iter().enumerate().rev() {
            let f = enc.op_backward(op);
            if f != Formula::True {
                constraint_of.insert(i, f);
            }
        }
        let mut core_parts = Vec::with_capacity(round.core.len());
        for &i in &round.core {
            match constraint_of.get(&i) {
                Some(f) => core_parts.push(f.clone()),
                None => {
                    return mismatch(format!(
                        "round {ri}: core names operation {i}, which contributes no constraint"
                    ));
                }
            }
        }
        let verdict = Solver::new().check(&Formula::And(core_parts));
        if !verdict.is_unsat() {
            let how = if verdict.is_unknown() {
                "could not be refuted"
            } else {
                "is satisfiable"
            };
            return mismatch(format!("round {ri}: claimed unsat core {how}"));
        }

        // Independent cross-check where the Fig. 3 substitution WP is
        // exact: compute `WP.true` over just the core's operations. Any
        // operation *between* two core members is skipped, which merges
        // its pre/post symbols — a strengthening of the SSA encoding —
        // so a genuine core stays unsatisfiable here too.
        let core_ops = round.core.iter().map(|&i| ops[i]);
        if let Some(wp) = semantics::wp_trace(&CBool::True, core_ops) {
            if let Some(f) = cbool_to_formula(&wp) {
                if Solver::new().check(&f).is_sat() {
                    return mismatch(format!(
                        "round {ri}: WP.true over the core operations is satisfiable"
                    ));
                }
                notes.push(format!("round {ri}: WP cross-check refuted the core"));
            }
        }
    }
    Validation::Confirmed { notes }
}

fn validate_degraded(cert: &DegradedCertificate, claimed: &str) -> Validation {
    if cert.verdict != claimed {
        return mismatch(format!(
            "degraded certificate for `{}` attached to a `{claimed}` verdict",
            cert.verdict
        ));
    }
    if cert.ledger.is_empty() {
        return mismatch("degraded verdict with an empty budget ledger".to_owned());
    }
    for (a, b) in cert.ledger.iter().zip(cert.ledger.iter().skip(1)) {
        if b.attempt != a.attempt + 1 {
            return mismatch("budget ledger attempts are not consecutive".to_owned());
        }
        if b.budget_ms < a.budget_ms {
            return mismatch("budget ledger shrinks between retries".to_owned());
        }
    }
    let last = cert.ledger.last().expect("checked non-empty");
    // A mismatch verdict was downgraded *after* the final attempt, so
    // its ledger legitimately ends with the original outcome.
    if !claimed.starts_with("CertificateMismatch") && last.outcome != cert.verdict {
        return mismatch(format!(
            "final verdict `{}` does not match the last attempt's outcome `{}`",
            cert.verdict, last.outcome
        ));
    }
    Validation::Confirmed { notes: Vec::new() }
}

/// Packages build + (optional corruption) + validate as a driver
/// [`ClusterValidator`]: the `--validate` mode. The `plan`'s
/// certificate-corruption sites are applied between building and
/// checking, so a chaos run can prove the validator catches exactly the
/// corrupted clusters; pass a plan with no rules for production use.
pub fn validator(plan: FaultPlan) -> ClusterValidator {
    ClusterValidator(Arc::new(move |analyses, cluster| {
        let outcome = &cluster.cluster.report.outcome;
        if matches!(outcome, CheckOutcome::CertificateMismatch { .. }) {
            return None;
        }
        let claimed = outcome.kind_label();
        let mut cert = match certify_cluster(analyses, cluster) {
            Ok(c) => c,
            Err(e) => {
                return Some(CheckOutcome::CertificateMismatch {
                    claimed,
                    reason: format!("could not build certificate: {e}"),
                });
            }
        };
        corrupt(&mut cert, &plan);
        match validate(analyses, &cert, &claimed) {
            Validation::Confirmed { .. } => None,
            Validation::Mismatch { reason } => {
                Some(CheckOutcome::CertificateMismatch { claimed, reason })
            }
        }
    }))
}

/// Certifies every cluster of a driver run into a portable trace file.
/// Clusters whose certificate cannot be built are recorded as degraded
/// entries with the build error as the verdict's annotation.
pub fn certify_report(analyses: &Analyses<'_>, report: &DriverReport, source: &str) -> TraceFile {
    let clusters = report
        .clusters
        .iter()
        .map(|c| {
            let claimed = c.cluster.report.outcome.kind_label();
            let certificate = certify_cluster(analyses, c).unwrap_or_else(|e| {
                Certificate::Degraded(DegradedCertificate {
                    func_name: c.cluster.func_name.clone(),
                    verdict: format!("Uncertifiable({e})"),
                    ledger: ledger_of(c),
                })
            });
            ClusterCert {
                func_name: c.cluster.func_name.clone(),
                claimed,
                certificate,
            }
        })
        .collect();
    TraceFile {
        source: source.to_owned(),
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blastlite::{run_clusters, CheckerConfig, DriverConfig};

    fn driven(src: &str) -> (cfa::Program, Vec<DriverClusterReport>) {
        let p = cfa::lower(&imp::parse(src).unwrap()).unwrap();
        let clusters =
            run_clusters(&p, CheckerConfig::default(), &DriverConfig::sequential()).clusters;
        (p, clusters)
    }

    const BUGGY: &str = "global x; fn main() { local a; a = nondet(); x = a + 1; \
                         if (x > 10) { error(); } }";
    const SAFE: &str = "global x; fn main() { x = 1; x = x + 1; if (x > 5) { error(); } }";

    #[test]
    fn bug_certificate_roundtrips_and_validates() {
        let (p, clusters) = driven(BUGGY);
        let an = Analyses::build(&p);
        let cert = certify_cluster(&an, &clusters[0]).unwrap();
        let Certificate::Bug(b) = &cert else {
            panic!("expected a bug certificate, got {cert:?}");
        };
        assert!(!b.slice.is_empty());
        assert!(validate(&an, &cert, "Bug").is_confirmed());
        // Wrong claim is itself a mismatch.
        assert!(!validate(&an, &cert, "Safe").is_confirmed());
    }

    #[test]
    fn safe_certificate_validates_and_core_drop_is_caught() {
        let (p, clusters) = driven(SAFE);
        let an = Analyses::build(&p);
        let mut cert = certify_cluster(&an, &clusters[0]).unwrap();
        let Certificate::Safe(s) = &cert else {
            panic!("expected a safety certificate, got {cert:?}");
        };
        assert!(!s.rounds.is_empty(), "refinement should have run");
        assert!(validate(&an, &cert, "Safe").is_confirmed());

        let plan =
            FaultPlan::new(1).inject(FaultSite::CertCore, rt::FaultKind::CorruptCertificate, 1.0);
        let applied = corrupt(&mut cert, &plan);
        assert_eq!(applied.len(), 1, "{applied:?}");
        assert!(!validate(&an, &cert, "Safe").is_confirmed());
    }

    #[test]
    fn witness_truncation_and_slice_permutation_are_caught() {
        let (p, clusters) = driven(BUGGY);
        let an = Analyses::build(&p);
        let base = certify_cluster(&an, &clusters[0]).unwrap();

        let mut truncated = base.clone();
        let plan = FaultPlan::new(2).inject(
            FaultSite::CertWitness,
            rt::FaultKind::CorruptCertificate,
            1.0,
        );
        assert_eq!(corrupt(&mut truncated, &plan).len(), 1);
        assert!(!validate(&an, &truncated, "Bug").is_confirmed());

        let mut permuted = base.clone();
        let plan =
            FaultPlan::new(3).inject(FaultSite::CertSlice, rt::FaultKind::CorruptCertificate, 1.0);
        if corrupt(&mut permuted, &plan).is_empty() {
            // Degenerate slice (too short to permute): nothing to assert.
            return;
        }
        assert!(!validate(&an, &permuted, "Bug").is_confirmed());
    }

    #[test]
    fn missing_oracle_value_is_a_structured_mismatch() {
        let (p, clusters) = driven(BUGGY);
        let an = Analyses::build(&p);
        let Certificate::Bug(mut b) = certify_cluster(&an, &clusters[0]).unwrap() else {
            panic!("expected bug");
        };
        b.havoc.clear();
        let v = validate(&an, &Certificate::Bug(b), "Bug");
        let Validation::Mismatch { reason } = v else {
            panic!("expected mismatch, got {v:?}");
        };
        assert!(reason.contains("missing oracle value"), "{reason}");
    }

    #[test]
    fn degraded_ledger_is_audited() {
        let good = DegradedCertificate {
            func_name: "main".into(),
            verdict: "Timeout(WallClock)".into(),
            ledger: vec![
                LedgerEntry {
                    attempt: 0,
                    budget_ms: 100,
                    reducer: "Identity".into(),
                    outcome: "Timeout(WallClock)".into(),
                },
                LedgerEntry {
                    attempt: 1,
                    budget_ms: 200,
                    reducer: "Identity".into(),
                    outcome: "Timeout(WallClock)".into(),
                },
            ],
        };
        assert!(validate_degraded(&good, "Timeout(WallClock)").is_confirmed());

        let mut shrinking = good.clone();
        shrinking.ledger[1].budget_ms = 50;
        assert!(!validate_degraded(&shrinking, "Timeout(WallClock)").is_confirmed());

        let mut empty = good.clone();
        empty.ledger.clear();
        assert!(!validate_degraded(&empty, "Timeout(WallClock)").is_confirmed());

        let mut wrong_tail = good;
        wrong_tail.ledger[1].outcome = "Safe".into();
        assert!(!validate_degraded(&wrong_tail, "Timeout(WallClock)").is_confirmed());
    }

    #[test]
    fn validator_in_the_driver_confirms_clean_runs() {
        let p = cfa::lower(&imp::parse(BUGGY).unwrap()).unwrap();
        let driver = DriverConfig::sequential().with_validator(validator(FaultPlan::new(0)));
        let r = run_clusters(&p, CheckerConfig::default(), &driver);
        assert!(
            r.clusters[0].cluster.report.outcome.is_bug(),
            "{:?}",
            r.clusters[0].cluster.report.outcome
        );
    }
}
