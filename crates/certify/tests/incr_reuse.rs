//! Integration tests for certificate-gated incremental verdict reuse:
//! `blastlite::Session::check_incremental` with `certify::validator` as
//! the gate. These live in `certify` (which depends on `blastlite`)
//! because the session crate cannot name the concrete validator without
//! a dependency cycle.

use blastlite::{render_verdicts, CheckerConfig, DriverConfig, Session};
use rt::{FaultKind, FaultPlan, FaultSite};

/// Dispatcher program: `main` calls exactly one of the leaf functions,
/// so each cluster's dependency set is `{leaf, main}` and a single-leaf
/// edit invalidates exactly one cluster.
const SRC: &str = r#"
    global s;
    fn f1() { local a; a = 1; if (a < 1) { error(); } }
    fn f2() { local b; b = 2; if (b == 2) { error(); } }
    fn main() { s = nondet(); if (s > 0) { f1(); } else { f2(); } }
"#;

fn cfg() -> CheckerConfig {
    CheckerConfig::default()
}

/// Renders a driver report the way `pathslice check` would, with the
/// volatile wall-clock column stripped.
fn rendered(session: &Session, report: &blastlite::DriverReport) -> (Vec<String>, i32) {
    let clusters: Vec<_> = report.clusters.iter().map(|c| c.cluster.clone()).collect();
    let (text, code) = render_verdicts(session.program(), &clusters);
    let lines = text
        .lines()
        .map(|l| {
            l.rsplit_once("  ")
                .map_or(l.to_owned(), |(v, _)| v.to_owned())
        })
        .collect();
    (lines, code)
}

#[test]
fn gated_reuse_is_byte_identical_to_cold_check() {
    let old = Session::compile(SRC, "<old>").unwrap();
    let _ = old.check(cfg(), &DriverConfig::sequential());

    // Edit f2's body only; f1's cluster ({f1, main}) is untouched.
    let edited = SRC.replace("b == 2", "b == 3");
    let (new, up) = Session::update(&old, &edited, "<new>").unwrap();
    assert!(!up.cold);
    assert_eq!(up.changed_functions, vec!["f2".to_owned()]);
    assert_eq!(up.carried_clusters, 1);
    assert_eq!(up.invalidated_clusters, 1);

    let gate = certify::validator(FaultPlan::default());
    let (warm, reuse) =
        new.check_incremental(cfg(), &DriverConfig::sequential(), Some(&gate), false);
    assert_eq!(reuse.verdict_reused, 1, "{reuse:?}");
    assert_eq!(reuse.cert_rejected, 0, "{reuse:?}");
    assert_eq!(reuse.recomputed, 1, "{reuse:?}");

    // The warm report must be byte-identical (modulo wall clock) to a
    // from-scratch compile-and-check of the edited source.
    let cold = Session::compile(&edited, "<cold>").unwrap();
    let cold_report = cold.check(cfg(), &DriverConfig::sequential());
    let (warm_lines, warm_code) = rendered(&new, &warm);
    let (cold_lines, cold_code) = rendered(&cold, &cold_report);
    assert_eq!(warm_lines, cold_lines);
    assert_eq!(warm_code, cold_code);
}

#[test]
fn corrupted_candidate_is_rejected_and_rechecked_cold() {
    let session = Session::compile(SRC, "<test>").unwrap();
    let baseline = session.check(cfg(), &DriverConfig::sequential());

    // Every reuse candidate is corrupted at the reuse site; the gate
    // must reject each one and the cluster must fall back to a cold
    // re-check whose verdicts match the baseline.
    let chaos = DriverConfig::sequential().with_faults(FaultPlan::new(7).inject(
        FaultSite::IncrReuse,
        FaultKind::CorruptCertificate,
        1.0,
    ));
    let gate = certify::validator(FaultPlan::default());
    let (report, reuse) = session.check_incremental(cfg(), &chaos, Some(&gate), false);
    assert_eq!(reuse.verdict_reused, 0, "{reuse:?}");
    assert_eq!(reuse.cert_rejected, 2, "{reuse:?}");
    assert_eq!(reuse.recomputed, 2, "{reuse:?}");

    let (lines, code) = rendered(&session, &report);
    let (base_lines, base_code) = rendered(&session, &baseline);
    assert_eq!(lines, base_lines);
    assert_eq!(code, base_code);
}

#[test]
fn intact_candidates_all_reuse_on_an_unchanged_program() {
    let session = Session::compile(SRC, "<test>").unwrap();
    let baseline = session.check(cfg(), &DriverConfig::sequential());

    let gate = certify::validator(FaultPlan::default());
    let (report, reuse) =
        session.check_incremental(cfg(), &DriverConfig::sequential(), Some(&gate), true);
    assert_eq!(reuse.verdict_reused, 2, "{reuse:?}");
    assert_eq!(reuse.recomputed, 0, "{reuse:?}");

    let (lines, code) = rendered(&session, &report);
    let (base_lines, base_code) = rendered(&session, &baseline);
    assert_eq!(lines, base_lines);
    assert_eq!(code, base_code);
}
