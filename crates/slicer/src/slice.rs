//! Algorithm `PathSlice` (Fig. 1 of the paper's algorithm listing).

use cfa::{CLval, EdgeId, Loc, Op, Path};
use dataflow::Analyses;
use lia::{Ctx, Formula};
use rt::{Budget, Interrupt};
use semantics::TraceEncoder;
use std::collections::BTreeSet;

/// Why an edge was taken into the slice (the disjuncts of `Take`,
/// Fig. 3). Recorded per kept edge for explanation and testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeReason {
    /// An assignment (or `nondet()`) to a live lvalue.
    AssignsLive,
    /// An `assume` whose source can bypass the step location (`pc ∈
    /// By.pc_s`): the branch decides whether control reaches the slice
    /// suffix at all.
    AssumeBypass,
    /// An `assume` guarding a possible write to a live lvalue on an
    /// alternative path (`WrBt.(pc, pc_s).L`).
    AssumeWritesBetween,
    /// A call edge (always taken — §4 keeps `WrBt`/`By` queries
    /// intraprocedural).
    Call,
    /// A return edge from a function that may modify a live lvalue
    /// (`Mods.f.L`).
    ReturnMods,
}

/// Whether `sub` is a (not necessarily contiguous) subsequence of `of`.
/// The slicer guarantees its output is one of the input path; validators
/// use this to check the structural half of a bug certificate.
pub fn is_subsequence(sub: &[EdgeId], of: &[EdgeId]) -> bool {
    let mut rest = of.iter();
    sub.iter().all(|e| rest.any(|o| o == e))
}

/// Options for [`PathSlicer::slice`] (the §4.2 optimizations).
#[derive(Debug, Clone, Copy, Default)]
pub struct SliceOptions {
    /// Stop as soon as the constraints of the taken operations are
    /// unsatisfiable; the slice is already infeasible and further edges
    /// cannot change that (§4.2 "Unsatisfiable Path Slices").
    pub early_unsat: bool,
    /// When an edge is dropped and no live lvalue can be written between
    /// the enclosing function's entry and the current location, jump
    /// straight to the call edge, skipping the guards on the path into
    /// this frame (§4.2 "Skipping Functions"). Sound, **not** complete.
    pub skip_functions: bool,
}

/// The output of [`PathSlicer::slice`].
#[derive(Debug, Clone)]
pub struct SliceResult {
    /// Indices into the input path of the kept edges, ascending.
    pub kept: Vec<usize>,
    /// The kept edges themselves (the slice, as an edge subsequence).
    pub edges: Vec<EdgeId>,
    /// Why each kept edge was taken (parallel to `kept`).
    pub reasons: Vec<TakeReason>,
    /// True if `early_unsat` stopped the pass before reaching the path
    /// start; the slice's constraint set is unsatisfiable.
    pub stopped_unsat: bool,
    /// The live lvalues at the point the pass stopped (path start unless
    /// `stopped_unsat`).
    pub final_live: Vec<CLval>,
    /// The step location at the point the pass stopped.
    pub final_step: Loc,
}

impl SliceResult {
    /// Slice size as a fraction of the original path length (the paper's
    /// Figures 5/6 metric), in percent.
    pub fn ratio_percent(&self, original_len: usize) -> f64 {
        if original_len == 0 {
            return 0.0;
        }
        self.kept.len() as f64 * 100.0 / original_len as f64
    }
}

/// The path slicing engine. Holds only a reference to the precomputed
/// [`Analyses`]; each [`PathSlicer::slice`] call is independent.
#[derive(Debug, Clone, Copy)]
pub struct PathSlicer<'a> {
    analyses: &'a Analyses<'a>,
}

impl<'a> PathSlicer<'a> {
    /// Creates a slicer over `analyses`.
    pub fn new(analyses: &'a Analyses<'a>) -> Self {
        PathSlicer { analyses }
    }

    /// The `Take` predicate (Fig. 3, fifth column), returning the reason
    /// if the edge must be kept.
    fn take(
        &self,
        live: &BTreeSet<CLval>,
        live_cells: &dataflow::BitSet,
        pc_step: Loc,
        edge_id: EdgeId,
    ) -> Option<TakeReason> {
        let program = self.analyses.program();
        let edge = program.edge(edge_id);
        match &edge.op {
            Op::Assign(..) | Op::Havoc(..) | Op::ArrStore(..) => {
                let lv = edge.op.write().expect("writing op");
                let alias = self.analyses.alias();
                if live.iter().any(|l| alias.may_alias(lv, *l)) {
                    Some(TakeReason::AssignsLive)
                } else {
                    None
                }
            }
            Op::Assume(_) => {
                let pc = edge.src;
                debug_assert_eq!(
                    pc.func, pc_step.func,
                    "assume queries are intraprocedural by construction"
                );
                if self.analyses.can_bypass(pc, pc_step) {
                    Some(TakeReason::AssumeBypass)
                } else if self.analyses.writes_between(pc, pc_step, live_cells) {
                    Some(TakeReason::AssumeWritesBetween)
                } else {
                    None
                }
            }
            Op::Call(_) => Some(TakeReason::Call),
            Op::Return => {
                // The function being returned from owns this edge.
                let f = edge.src.func;
                if self.analyses.mods(f).intersects(live_cells) {
                    Some(TakeReason::ReturnMods)
                } else {
                    None
                }
            }
        }
    }

    /// Runs Algorithm `PathSlice` on `path`.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn slice(&self, path: &Path, options: SliceOptions) -> SliceResult {
        self.slice_under(path, options, &Budget::unlimited())
            .expect("unlimited budget never interrupts")
    }

    /// [`PathSlicer::slice`] under a cooperative budget: the backward
    /// pass polls `budget` at every edge (and attaches it to the
    /// early-unsat solver context), returning the interrupt instead of a
    /// slice when the budget runs out mid-pass.
    ///
    /// # Errors
    ///
    /// Returns the [`Interrupt`] when `budget` expires or is cancelled
    /// before the pass finishes.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn slice_under(
        &self,
        path: &Path,
        options: SliceOptions,
        budget: &Budget,
    ) -> Result<SliceResult, Interrupt> {
        let program = self.analyses.program();
        let edges = path.edges();
        assert!(!edges.is_empty(), "cannot slice an empty path");
        let call_origins = path.call_origins(program);

        let mut live: BTreeSet<CLval> = BTreeSet::new();
        // Cell view of the live set, kept in sync for WrBt/Mods queries.
        let mut live_cells = self.analyses.cells_of(live.iter());
        let mut pc_step: Loc = program.edge(*edges.last().expect("nonempty")).dst;

        let mut kept_rev: Vec<usize> = Vec::new();
        let mut reasons_rev: Vec<TakeReason> = Vec::new();
        let mut stopped_unsat = false;

        // Early-unsat machinery (§4.2): encode taken ops backwards.
        let mut encoder = TraceEncoder::new(self.analyses.alias());
        let mut ctx = Ctx::new();
        ctx.attach_budget(budget.clone());

        let mut i = edges.len() as isize - 1;
        while i >= 0 {
            budget.poll()?;
            let idx = i as usize;
            let edge_id = edges[idx];
            let edge = program.edge(edge_id);
            let reason = self.take(&live, &live_cells, pc_step, edge_id);
            if let Some(reason) = reason {
                kept_rev.push(idx);
                reasons_rev.push(reason);
                // Live := (Live \ Wt.op) ∪ Rd.op — with the §3.4
                // generalization: the kill uses MustAlias, the gen uses
                // syntactic reads. Calls and returns leave Live unchanged
                // (their effects were already processed edge-by-edge when
                // walking the callee body).
                match &edge.op {
                    Op::Assign(..) | Op::Havoc(..) | Op::ArrStore(..) => {
                        let lv = edge.op.write().expect("writing op");
                        let alias = self.analyses.alias();
                        // MustAlias is false for array summaries, so
                        // element stores never strong-kill (§3.4 weak
                        // updates).
                        live.retain(|l| !alias.must_alias(lv, *l));
                        live.extend(edge.op.reads());
                    }
                    Op::Assume(_) => {
                        live.extend(edge.op.reads());
                    }
                    Op::Call(_) | Op::Return => {}
                }
                live_cells = self.analyses.cells_of(live.iter());
                pc_step = edge.src;
                if options.early_unsat {
                    let f = encoder.op_backward(&edge.op);
                    if f != Formula::True {
                        ctx.assert(f);
                        if ctx.check().is_unsat() {
                            stopped_unsat = true;
                            break;
                        }
                    }
                }
                i -= 1;
            } else {
                // Dropped edge: the generalized index update (§4 line 12
                // plus the §4.2 function-skipping variant).
                if matches!(edge.op, Op::Return) {
                    // Skip the entire callee frame, landing just before
                    // the call edge. A return edge belongs to the frame
                    // opened by its own call origin.
                    let co = call_origins[idx].expect("return edges have a call origin");
                    i = co as isize - 1;
                } else if options.skip_functions {
                    let pc0 = program.cfa(edge.src.func).entry();
                    if !self.analyses.writes_between(pc0, edge.src, &live_cells) {
                        // Jump to the call edge of the current frame (it
                        // will be taken); for the outermost frame there
                        // is no call edge and slicing is done.
                        match call_origins[idx] {
                            Some(co) => i = co as isize,
                            None => break,
                        }
                    } else {
                        i -= 1;
                    }
                } else {
                    i -= 1;
                }
            }
        }

        kept_rev.reverse();
        reasons_rev.reverse();
        obs::counter("slice.edges_kept").add(kept_rev.len() as u64);
        obs::counter("slice.edges_dropped").add((edges.len() - kept_rev.len()) as u64);
        if stopped_unsat {
            obs::counter("slice.early_unsat_stops").inc();
        }
        obs::histogram("slice.kept_per_pass").observe(kept_rev.len() as u64);
        let slice_edges: Vec<EdgeId> = kept_rev.iter().map(|&k| edges[k]).collect();
        Ok(SliceResult {
            kept: kept_rev,
            edges: slice_edges,
            reasons: reasons_rev,
            stopped_unsat,
            final_live: live.into_iter().collect(),
            final_step: pc_step,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfa::Program;
    use semantics::{ExecOutcome, Interp, ReplayOracle, State};

    fn setup(src: &str) -> Program {
        cfa::lower(&imp::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn subsequence_check() {
        let p = setup("fn main() { local a; a = 1; a = 2; a = 3; }");
        let e = |i| EdgeId {
            func: p.main(),
            idx: i,
        };
        assert!(is_subsequence(&[], &[e(0), e(1)]));
        assert!(is_subsequence(&[e(0), e(2)], &[e(0), e(1), e(2)]));
        assert!(is_subsequence(&[e(0), e(1), e(2)], &[e(0), e(1), e(2)]));
        assert!(!is_subsequence(&[e(1), e(0)], &[e(0), e(1), e(2)]));
        assert!(!is_subsequence(&[e(0), e(0)], &[e(0), e(1)]));
        assert!(!is_subsequence(&[e(3)], &[e(0), e(1), e(2)]));
    }

    /// Runs the program with the given initial values for the named
    /// globals and returns the executed path (must reach ERR).
    fn error_path(program: &Program, init: &[(&str, i64)], inputs: Vec<i64>) -> Path {
        let mut st = State::zeroed(program);
        for (name, v) in init {
            st.set(program.vars().lookup(name).unwrap(), *v);
        }
        let r = Interp::run(program, st, &mut ReplayOracle::new(inputs), 1_000_000);
        assert!(
            matches!(r.outcome, ExecOutcome::ReachedError(_)),
            "expected ERR, got {:?}",
            r.outcome
        );
        r.path
    }

    fn ops_of(program: &Program, result: &SliceResult) -> Vec<String> {
        result
            .edges
            .iter()
            .map(|&e| program.fmt_op(&program.edge(e).op))
            .collect()
    }

    /// Ex2, Figure 1, *without* the shaded lines: the thousand-iteration
    /// loop and the call to f are irrelevant; the slice keeps only the
    /// two branch assumes, and is feasible.
    const EX2_PLAIN: &str = r#"
        global a, x;
        fn f() { local t; t = t + 1; }
        fn main() {
            local i;
            for (i = 1; i <= 1000; i = i + 1) { f(); }
            if (a >= 0) {
                if (x == 0) { error(); }
            }
        }
    "#;

    #[test]
    fn ex2_slice_drops_the_loop() {
        let p = setup(EX2_PLAIN);
        let a = Analyses::build(&p);
        let path = error_path(&p, &[("a", 1)], vec![]);
        assert!(
            path.len() > 4000,
            "the path unrolls the loop ({} edges)",
            path.len()
        );
        let result = PathSlicer::new(&a).slice(&path, SliceOptions::default());
        let ops = ops_of(&p, &result);
        assert_eq!(
            ops,
            vec!["assume(a >= 0)", "assume(x == 0)"],
            "paper Example 5"
        );
        assert!(!result.stopped_unsat);
        assert!(result.ratio_percent(path.len()) < 0.1);
    }

    /// Ex2 *with* the shaded lines: x is set to 1 exactly when a >= 0, so
    /// the target is unreachable; the slice keeps the initialization
    /// branch and assignments and becomes infeasible — while still
    /// dropping the loop (paper Example 4/5).
    const EX2_SHADED: &str = r#"
        global a, x;
        fn f() { local t; t = t + 1; }
        fn main() {
            local i;
            x = 0;
            if (a >= 0) { x = 1; }
            for (i = 1; i <= 1000; i = i + 1) { f(); }
            if (a >= 0) {
                if (x == 0) { error(); }
            }
        }
    "#;

    #[test]
    fn ex2_shaded_slice_is_infeasible_but_small() {
        let p = setup(EX2_SHADED);
        let a = Analyses::build(&p);
        // Force the interpreter down the buggy-looking branch: a >= 0.
        // The path reaches the second `if (x == 0)` with x = 1, so the
        // concrete run does NOT reach ERR; build the abstract path by
        // hand instead: take the a >= 0 branch but pretend x == 0 held.
        // Simplest honest construction: drive a run with a = -1 … which
        // avoids ERR too. So we take the concrete path for a >= 0 and
        // substitute its last branch: this is exactly the kind of
        // abstract counterexample a model checker emits.
        let mut st = State::zeroed(&p);
        st.set(p.vars().lookup("a").unwrap(), 1);
        let run = Interp::run(&p, st, &mut ReplayOracle::new(vec![]), 1_000_000);
        assert_eq!(run.outcome, ExecOutcome::Completed);
        // The executed path ends ... assume(a>=0); assume(x != 0); return.
        // Replace the final x != 0 assume with its sibling x == 0 edge
        // into ERR.
        let mut edges = run.path.edges().to_vec();
        assert!(matches!(p.edge(edges[edges.len() - 1]).op, Op::Return));
        edges.pop(); // return
        let last = *edges.last().unwrap();
        let last_edge = p.edge(last);
        assert!(last_edge.op.is_assume());
        let sibling = p
            .cfa(p.main())
            .succ_edges(last_edge.src)
            .iter()
            .copied()
            .find(|&ei| ei != last.idx)
            .unwrap();
        edges.pop();
        edges.push(EdgeId {
            func: p.main(),
            idx: sibling,
        });
        let err_target = p.edge(*edges.last().unwrap()).dst;
        assert!(p.cfa(p.main()).error_locs().contains(&err_target));
        let path = Path::new(&p, edges).unwrap();

        let result = PathSlicer::new(&a).slice(&path, SliceOptions::default());
        let ops = ops_of(&p, &result);
        // Loop and f() must be gone; the two branches on a plus the two
        // x assignments must remain (paper Example 5, shaded case).
        assert!(
            ops.iter()
                .all(|o| !o.contains("call") && !o.contains("main::i")),
            "{ops:?}"
        );
        // `x := 0` is strong-killed by `x := 1` along this path and is
        // correctly dropped; both branches on `a` and the shaded
        // assignment remain — exactly the inconsistent core.
        assert_eq!(
            ops,
            vec![
                "assume(a >= 0)",
                "x := 1",
                "assume(a >= 0)",
                "assume(x == 0)"
            ],
            "paper Example 5, shaded case"
        );
        // And the slice is infeasible.
        let slice_ops: Vec<&Op> = result.edges.iter().map(|&e| &p.edge(e).op).collect();
        let (_, verdict, _) =
            semantics::trace_feasibility(a.alias(), slice_ops, &lia::Solver::new());
        assert!(verdict.is_unsat(), "shaded Ex2 slice must be infeasible");
    }

    /// Ex1, Figure 2: along the else-branch path, `complex()` is sliced
    /// away entirely (path slicing beats static slicing — Example 6).
    const EX1: &str = r#"
        global a, x;
        fn complex() { local t; t = nondet(); return t; }
        fn main() {
            local r;
            if (a > 0) { r = complex(); x = r; } else { x = 0 - 1; }
            if (x < 0) { error(); }
        }
    "#;

    #[test]
    fn ex1_slice_eliminates_complex_on_else_path() {
        let p = setup(EX1);
        let a = Analyses::build(&p);
        let path = error_path(&p, &[("a", -1)], vec![]);
        let result = PathSlicer::new(&a).slice(&path, SliceOptions::default());
        let ops = ops_of(&p, &result);
        assert_eq!(
            ops,
            vec!["assume(a <= 0)", "x := (0 - 1)", "assume(x < 0)"],
            "paper Figure 2(B)"
        );
        // The slice is feasible: every state with a <= 0 reaches ERR.
        let slice_ops: Vec<&Op> = result.edges.iter().map(|&e| &p.edge(e).op).collect();
        let (_, verdict, _) =
            semantics::trace_feasibility(a.alias(), slice_ops, &lia::Solver::new());
        assert!(verdict.is_sat());
    }

    #[test]
    fn ex1_then_path_keeps_complex_call() {
        // On the then-branch path the returned value flows into x: the
        // call must be kept (its return writes a live transfer global).
        let p = setup(EX1);
        let a = Analyses::build(&p);
        let path = error_path(&p, &[("a", 1)], vec![-5]);
        let result = PathSlicer::new(&a).slice(&path, SliceOptions::default());
        let ops = ops_of(&p, &result);
        assert!(ops.iter().any(|o| o.contains("call complex")), "{ops:?}");
        assert!(result.reasons.contains(&TakeReason::ReturnMods));
    }

    #[test]
    fn irrelevant_interleaved_assignments_are_dropped() {
        let src = r#"
            global a, b, c;
            fn main() {
                b = 1; a = 2; b = b + 1; c = b; a = a + 1;
                if (a > 2) { error(); }
            }
        "#;
        let p = setup(src);
        let an = Analyses::build(&p);
        let path = error_path(&p, &[], vec![]);
        let result = PathSlicer::new(&an).slice(&path, SliceOptions::default());
        let ops = ops_of(&p, &result);
        assert_eq!(ops, vec!["a := 2", "a := (a + 1)", "assume(a > 2)"]);
    }

    #[test]
    fn live_kill_is_strong_for_plain_variables() {
        // a = 5 kills liveness of the earlier a = nondet().
        let src = r#"
            global a;
            fn main() { a = nondet(); a = 5; if (a == 5) { error(); } }
        "#;
        let p = setup(src);
        let an = Analyses::build(&p);
        let path = error_path(&p, &[], vec![0]);
        let result = PathSlicer::new(&an).slice(&path, SliceOptions::default());
        let ops = ops_of(&p, &result);
        assert_eq!(
            ops,
            vec!["a := 5", "assume(a == 5)"],
            "havoc killed by strong update"
        );
    }

    #[test]
    fn early_unsat_truncates_the_pass() {
        let src = r#"
            global a, b;
            fn main() {
                b = nondet();
                a = 1;
                if (a == 2) {
                    if (b == 3) { error(); }
                }
            }
        "#;
        let p = setup(src);
        let an = Analyses::build(&p);
        // Build the abstract path by splicing: concrete execution never
        // reaches ERR, so craft edges: b=nondet, a=1, assume(a==2),
        // assume(b==3) into ERR.
        let m = p.cfa(p.main());
        let mut edges = Vec::new();
        // Walk greedily toward the error by choosing assume edges that
        // lead toward it (a hand-built abstract counterexample).
        let mut cur = m.entry();
        'outer: loop {
            for &ei in m.succ_edges(cur) {
                let e = m.edge(ei);
                // Choose the branch that goes toward ERR: the assume(a==2)
                // and assume(b==3) arms (their negations lower to `!=`).
                let takes_err_branch = match &e.op {
                    Op::Assume(pb) => !matches!(pb, cfa::CBool::Cmp(imp::ast::CmpOp::Ne, _, _)),
                    _ => true,
                };
                if takes_err_branch {
                    edges.push(EdgeId {
                        func: p.main(),
                        idx: ei,
                    });
                    cur = e.dst;
                    if m.error_locs().contains(&cur) {
                        break 'outer;
                    }
                    continue 'outer;
                }
            }
            panic!("no progress toward error");
        }
        let path = Path::new(&p, edges).unwrap();
        let with = PathSlicer::new(&an).slice(
            &path,
            SliceOptions {
                early_unsat: true,
                skip_functions: false,
            },
        );
        assert!(with.stopped_unsat, "a := 1 contradicts assume(a == 2)");
        // The truncated slice must not extend past the contradiction: the
        // initial havoc of b is not reached.
        let ops = ops_of(&p, &with);
        assert!(!ops.iter().any(|o| o.contains("nondet")), "{ops:?}");
    }

    #[test]
    fn skip_functions_drops_guards_on_the_call_stack() {
        // Deep call chain with branch guards in each frame. The argument-
        // transfer assignments between each guard and its call are not
        // live (the callees' relevant code never reads the parameters),
        // so they are dropped — and with `skip_functions` that drop
        // short-circuits to the frame's call edge, skipping the guards
        // (§4.2 "Skipping Functions").
        let src = r#"
            global x;
            fn h(hv) { if (x != 99) { error(); } }
            fn g(gv) { local t; t = nondet(); if (t > 0) { h(t); } }
            fn f() { local s; s = nondet(); if (s > 0) { g(s); } }
            fn main() { f(); }
        "#;
        let p = setup(src);
        let an = Analyses::build(&p);
        let path = error_path(&p, &[], vec![1, 1]);
        let plain = PathSlicer::new(&an).slice(&path, SliceOptions::default());
        let skipping = PathSlicer::new(&an).slice(
            &path,
            SliceOptions {
                early_unsat: false,
                skip_functions: true,
            },
        );
        let plain_ops = ops_of(&p, &plain);
        let skip_ops = ops_of(&p, &skipping);
        // Without skipping, the guards (and the havocs feeding them) stay.
        assert!(
            plain_ops.iter().any(|o| o.contains("t > 0")),
            "{plain_ops:?}"
        );
        // With skipping they are gone, but calls and the final check stay.
        assert!(
            !skip_ops.iter().any(|o| o.contains("t > 0")),
            "{skip_ops:?}"
        );
        assert!(
            skip_ops.iter().any(|o| o.contains("assume(x != 99)")),
            "{skip_ops:?}"
        );
        assert!(skipping.kept.len() < plain.kept.len());
    }

    #[test]
    fn skip_functions_loses_completeness_as_the_paper_warns() {
        // §4.2: "However after this modification the resulting slice is
        // not guaranteed to be complete." Construct the failure: the
        // guard into the callee can never hold, so ERR is unreachable —
        // but skip-functions drops the guard, leaving a *feasible* slice
        // that would wrongly suggest reachability.
        let src = r#"
            global x;
            fn inner(v) { if (x == 0) { error(); } }
            fn outer() {
                local g, pad;
                g = nondet();
                if (g > 10) {
                    if (g < 5) {
                        pad = 1;
                        inner(pad);
                    }
                }
            }
            fn main() { outer(); }
        "#;
        let p = setup(src);
        let an = Analyses::build(&p);
        // ERR is truly unreachable (g > 10 ∧ g < 5 is vacuous): splice the
        // abstract path by hand.
        let outer = p.func_id("outer").unwrap();
        let inner = p.func_id("inner").unwrap();
        let main = p.main();
        let oc = p.cfa(outer);
        let ic = p.cfa(inner);
        let mc = p.cfa(main);
        let mut edges = Vec::new();
        // main: call outer
        let call_outer = (0..mc.edges().len() as u32)
            .find(|&i| matches!(mc.edge(i).op, Op::Call(f) if f == outer))
            .unwrap();
        edges.push(EdgeId {
            func: main,
            idx: call_outer,
        });
        // outer: walk entry → havoc g → assume(g>10) → assume(g<5) → pad := 1
        //        → inner::arg0 := pad → call inner
        let mut cur = oc.entry();
        'walk: loop {
            for &ei in oc.succ_edges(cur) {
                let e = oc.edge(ei);
                let keep = match &e.op {
                    Op::Assume(b) => !matches!(
                        b,
                        cfa::CBool::Cmp(imp::ast::CmpOp::Le, _, _)
                            | cfa::CBool::Cmp(imp::ast::CmpOp::Ge, _, _)
                    ),
                    _ => true,
                };
                if keep {
                    edges.push(EdgeId {
                        func: outer,
                        idx: ei,
                    });
                    cur = e.dst;
                    if matches!(e.op, Op::Call(f) if f == inner) {
                        break 'walk;
                    }
                    continue 'walk;
                }
            }
            panic!("walk stuck at {cur}");
        }
        // inner: prologue → assume(x == 0) → ERR
        let mut cur = ic.entry();
        'walk2: loop {
            for &ei in ic.succ_edges(cur) {
                let e = ic.edge(ei);
                let keep = match &e.op {
                    Op::Assume(b) => matches!(b, cfa::CBool::Cmp(imp::ast::CmpOp::Eq, _, _)),
                    _ => true,
                };
                if keep {
                    edges.push(EdgeId {
                        func: inner,
                        idx: ei,
                    });
                    cur = e.dst;
                    if ic.error_locs().contains(&cur) {
                        break 'walk2;
                    }
                    continue 'walk2;
                }
            }
            panic!("walk2 stuck at {cur}");
        }
        let path = Path::new(&p, edges).unwrap();

        let feasible = |r: &SliceResult| {
            let ops: Vec<&Op> = r.edges.iter().map(|&e| &p.edge(e).op).collect();
            let (_, v, _) = semantics::trace_feasibility(an.alias(), ops, &lia::Solver::new());
            v.is_sat()
        };
        // The faithful slice keeps the contradictory guards: infeasible,
        // as completeness demands for an unreachable target.
        let plain = PathSlicer::new(&an).slice(&path, SliceOptions::default());
        assert!(!feasible(&plain), "complete slice must be infeasible");
        // Skip-functions drops them: the slice becomes feasible even
        // though ERR is unreachable — completeness is lost.
        let skipping = PathSlicer::new(&an).slice(
            &path,
            SliceOptions {
                early_unsat: false,
                skip_functions: true,
            },
        );
        assert!(
            feasible(&skipping),
            "skip-functions sacrifices completeness (paper §4.2): {:?}",
            skipping.edges
        );
    }

    #[test]
    fn pointer_write_keeps_assignment_via_may_alias() {
        let src = r#"
            global x, y;
            fn main() {
                local pt, c;
                c = nondet();
                if (c > 0) { pt = &x; } else { pt = &y; }
                *pt = 5;
                if (x == 5) { error(); }
            }
        "#;
        let p = setup(src);
        let an = Analyses::build(&p);
        let path = error_path(&p, &[], vec![1]);
        let result = PathSlicer::new(&an).slice(&path, SliceOptions::default());
        let ops = ops_of(&p, &result);
        // *pt = 5 may-writes x (live): must be kept.
        assert!(ops.iter().any(|o| o.contains("*main::pt := 5")), "{ops:?}");
        // And since the kill is only may (two targets), x stays live:
        // the branch assigning pt is kept through liveness of pt.
        assert!(ops.iter().any(|o| o.contains("pt := &x")), "{ops:?}");
    }

    #[test]
    fn slice_of_slice_is_identity_shaped() {
        // Slicing is idempotent on the kept subsequence for loop-free
        // single-function paths: re-slicing the slice keeps everything.
        let src = r#"
            global a, b, c;
            fn main() {
                a = 1; b = 2; c = 3;
                if (a == 1) { if (b == 2) { if (c == 3) { error(); } } }
            }
        "#;
        let p = setup(src);
        let an = Analyses::build(&p);
        let path = error_path(&p, &[], vec![]);
        let r1 = PathSlicer::new(&an).slice(&path, SliceOptions::default());
        // The kept subsequence here is itself a valid path (contiguous).
        if let Ok(sub) = Path::new(&p, r1.edges.clone()) {
            let r2 = PathSlicer::new(&an).slice(&sub, SliceOptions::default());
            assert_eq!(r2.kept.len(), r1.kept.len());
        }
    }

    #[test]
    fn expired_budget_interrupts_backward_pass() {
        let p = setup(EX2_PLAIN);
        let an = Analyses::build(&p);
        let path = error_path(&p, &[("a", 1)], vec![]);
        let spent = Budget::until(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let r = PathSlicer::new(&an).slice_under(&path, SliceOptions::default(), &spent);
        assert_eq!(r.unwrap_err(), Interrupt::DeadlineExpired);
        // A cancelled token interrupts too.
        let token = rt::CancelToken::new();
        token.cancel();
        let cancelled = Budget::unlimited().with_token(token);
        let r = PathSlicer::new(&an).slice_under(&path, SliceOptions::default(), &cancelled);
        assert_eq!(r.unwrap_err(), Interrupt::Cancelled);
        // And an ample budget reproduces the plain result.
        let ample = Budget::lasting(std::time::Duration::from_secs(60));
        let r = PathSlicer::new(&an)
            .slice_under(&path, SliceOptions::default(), &ample)
            .unwrap();
        let plain = PathSlicer::new(&an).slice(&path, SliceOptions::default());
        assert_eq!(r.kept, plain.kept);
    }

    #[test]
    #[should_panic(expected = "cannot slice an empty path")]
    fn empty_path_panics() {
        let p = setup("fn main() { }");
        let an = Analyses::build(&p);
        let _ = PathSlicer::new(&an).slice(&Path::default(), SliceOptions::default());
    }
}
