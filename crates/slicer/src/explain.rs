//! Human-readable rendering of a slice — the artifact the paper's §5
//! argues a user inspects instead of a multi-thousand-block trace.

use crate::slice::{SliceResult, TakeReason};
use cfa::{Path, Program};
use std::fmt::Write as _;

/// Renders a slice as a numbered listing: one line per kept edge with its
/// original path position, the operation, and the reason `Take` kept it.
pub fn render_slice(program: &Program, path: &Path, result: &SliceResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "path slice: {} of {} operations ({:.2}%){}",
        result.kept.len(),
        path.len(),
        result.ratio_percent(path.len()),
        if result.stopped_unsat {
            " — stopped: constraints unsatisfiable"
        } else {
            ""
        },
    );
    for (k, (&idx, reason)) in result.kept.iter().zip(&result.reasons).enumerate() {
        let edge = program.edge(path.edges()[idx]);
        let why = match reason {
            TakeReason::AssignsLive => "assigns a live lvalue",
            TakeReason::AssumeBypass => "branch decides reachability (bypass)",
            TakeReason::AssumeWritesBetween => "branch guards a write to a live lvalue",
            TakeReason::Call => "call (always kept)",
            TakeReason::ReturnMods => "returned-from function writes a live lvalue",
        };
        let func = program.cfa(edge.src.func).name();
        let _ = writeln!(
            out,
            "{k:>4}. [{idx:>6}] {func}: {op:<40} // {why}",
            op = program.fmt_op(&edge.op),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::{PathSlicer, SliceOptions};
    use dataflow::Analyses;
    use semantics::{ExecOutcome, Interp, ReplayOracle, State};

    #[test]
    fn rendering_lists_kept_edges_with_reasons() {
        let src = r#"
            global a;
            fn main() {
                local junk;
                junk = 17;
                a = nondet();
                if (a > 3) { error(); }
            }
        "#;
        let p = cfa::lower(&imp::parse(src).unwrap()).unwrap();
        let an = Analyses::build(&p);
        let r = Interp::run(
            &p,
            State::zeroed(&p),
            &mut ReplayOracle::new(vec![5]),
            10_000,
        );
        assert!(matches!(r.outcome, ExecOutcome::ReachedError(_)));
        let result = PathSlicer::new(&an).slice(&r.path, SliceOptions::default());
        let text = render_slice(&p, &r.path, &result);
        assert!(text.contains("a := nondet()"), "{text}");
        assert!(text.contains("assume(a > 3)"), "{text}");
        assert!(text.contains("bypass"), "{text}");
        assert!(
            !text.contains("junk"),
            "irrelevant edges are not rendered: {text}"
        );
    }
}
