//! `slicer` — the paper's contribution: **path slicing**.
//!
//! Given a (possibly infeasible) program path π to a target location,
//! [`PathSlicer::slice`] computes a subsequence of π's edges — a *path
//! slice* — that is
//!
//! * **sound**: if the slice's operation sequence is infeasible, π is
//!   infeasible (`WP.true.(Tr.π) ⊆ WP.true.(Tr.π')`), and
//! * **complete**: every state that can execute the slice either reaches
//!   π's target along *some* program path, or diverges (§3.2).
//!
//! The algorithm (Fig. 3 + Algorithm 1, generalized to pointers in §3.4
//! and procedures in §4) iterates backwards over the path maintaining the
//! set of *live lvalues* and the *step location* (source of the last
//! taken edge), and consults three precomputed relations from the
//! [`dataflow`] crate: may-alias write sets, `WrBt` (written-between),
//! `By` (bypass), and `Mods` (callee write summaries).
//!
//! Two optimizations from §4.2 are available through [`SliceOptions`]:
//! early termination once the slice's constraints are unsatisfiable
//! (sound and complete — the verdict is already decided) and
//! *function-skipping* for deep call stacks (sound but **not** complete).
//!
//! # Example
//!
//! Ex1 from the paper (Fig. 2): the call to `complex()` is irrelevant to
//! the error location along the else-branch path, and the slice drops it.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use semantics::{ExecOutcome, Interp, ReplayOracle, State};
//!
//! let src = r#"
//!     global a, x, counter;
//!     fn complex() { local t; t = nondet(); return t; }
//!     fn main() {
//!         local r;
//!         counter = counter + 1;
//!         if (a > 0) { r = complex(); x = r; } else { x = 0 - 1; }
//!         counter = counter + 1;
//!         if (x < 0) { error(); }
//!     }
//! "#;
//! let program = cfa::lower(&imp::parse(src)?)?;
//! let analyses = dataflow::Analyses::build(&program);
//!
//! // Drive an execution that takes the else branch and reaches ERR.
//! let mut st = State::zeroed(&program);
//! st.set(program.vars().lookup("a").unwrap(), -1);
//! let run = Interp::run(&program, st, &mut ReplayOracle::new(vec![]), 10_000);
//! assert!(matches!(run.outcome, ExecOutcome::ReachedError(_)));
//!
//! let slicer = slicer::PathSlicer::new(&analyses);
//! let result = slicer.slice(&run.path, slicer::SliceOptions::default());
//! assert!(result.kept.len() < run.path.len());
//! # Ok(())
//! # }
//! ```

mod explain;
mod slice;

pub use explain::render_slice;
pub use slice::{is_subsequence, PathSlicer, SliceOptions, SliceResult, TakeReason};
