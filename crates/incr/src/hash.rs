//! The workspace's one content-hash construction.
//!
//! Every layer that content-addresses program text — the session cache
//! key, the verdict-journal record key, the fabric's `peer_get` ring
//! routing, and the per-function keys of the incremental derivation
//! graph — derives its value from this module, so the layers can never
//! drift apart. The construction is 64-bit FNV-1a, written out by hand
//! (no std `Hasher`) so values are stable across Rust releases and
//! platforms: they are persisted in journals and committed BENCH
//! baselines.

/// 64-bit FNV-1a over a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// A streaming FNV-1a hasher for composite keys.
///
/// Multi-part keys interleave their parts with length prefixes (see
/// [`Fnv::write_frame`]) so `("ab", "c")` and `("a", "bc")` cannot
/// collide by concatenation.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian) into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a length-prefixed frame into the state, so adjacent
    /// variable-length parts keep distinct boundaries.
    pub fn write_frame(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write(bytes);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The canonical content key of a parsed program: FNV-1a over the
/// *resolved* source (the AST pretty-printed back to canonical text), so
/// texts differing only in whitespace or comments share a key. This is
/// the value `blastlite::Session::content_key` and the server's analysis
/// cache key resolve to.
pub fn ast_key(ast: &imp::ast::Program) -> u64 {
    fnv64(imp::pretty::program_to_string(ast).as_bytes())
}

/// The content key of one function definition: FNV-1a over its
/// pretty-printed text. The finest-grained node of the derivation
/// graph — everything else is memoized against (sets of) these.
pub fn fn_key(f: &imp::ast::Function) -> u64 {
    fnv64(imp::pretty::function_to_string(f).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_the_historic_construction() {
        // The exact value `Session::content_key` and the journal
        // checksum produced before unification — changing it would
        // orphan every persisted journal record and BENCH baseline.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in b"pathslice" {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        assert_eq!(fnv64(b"pathslice"), h);
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn frames_keep_boundaries() {
        let mut a = Fnv::new();
        a.write_frame(b"ab");
        a.write_frame(b"c");
        let mut b = Fnv::new();
        b.write_frame(b"a");
        b.write_frame(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn ast_key_ignores_formatting() {
        let a = imp::parse("global x;\nfn main() { x = 1; }").unwrap();
        let b = imp::parse("global x;   \n\n fn main() {\n x = 1;\n }").unwrap();
        let c = imp::parse("global x;\nfn main() { x = 2; }").unwrap();
        assert_eq!(ast_key(&a), ast_key(&b));
        assert_ne!(ast_key(&a), ast_key(&c));
    }

    #[test]
    fn fn_key_is_per_function() {
        let p = imp::parse("global x; fn f() { x = 1; } fn main() { f(); }").unwrap();
        let q = imp::parse("global x; fn f() { x = 2; } fn main() { f(); }").unwrap();
        assert_ne!(fn_key(&p.functions[0]), fn_key(&q.functions[0]));
        assert_eq!(fn_key(&p.functions[1]), fn_key(&q.functions[1]));
    }
}
