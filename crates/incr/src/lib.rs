//! The incremental derivation graph: function-granular content
//! addressing for verification artifacts.
//!
//! The PR 4 analysis cache keys on the whole resolved program, so a
//! one-line edit of a 50-function program is a total miss. This crate
//! supplies the node keys of a salsa-style derivation graph instead:
//!
//! ```text
//! fn body text ──fn_key──▶ parsed AST ──▶ lowered CFA ──cfa_key──▶
//!     dataflow fixpoints (Mods / WrBt / By) ──▶
//!     per-cluster dependency set ──dep_key──▶ cluster verdict (+ its
//!     refinement predicates), reuse gated on the PR 2 certificate
//! ```
//!
//! Every derived artifact is memoized against the keys of *exactly the
//! inputs it read*, so `blastlite::Session::update` can answer "which
//! clusters did this edit invalidate?" and reuse everything else.
//!
//! Two properties carry the soundness argument:
//!
//! 1. **Keys are name-resolved, not id-resolved.** [`cfa_key`] hashes
//!    edges through `Program::fmt_op` (source-level names) plus each
//!    referenced variable's `(name, kind, length)`, never a raw
//!    [`VarId`](cfa::VarId) or [`FuncId`] index — so keys survive the id
//!    renumbering that any edit induces during re-lowering.
//! 2. **Dependency sets are control-closed.** [`cluster_deps`] includes
//!    not just the cluster function's callers and callees but every
//!    function a path from `main`'s entry can *enter before* reaching
//!    the cluster (a preceding callee can block the path — e.g. by not
//!    terminating — or change global state, even when its `Mods` set is
//!    disjoint from everything the cluster reads). Equal [`dep_key`]s
//!    therefore imply the checker explores bisimilar state spaces and
//!    the old verdict, slice, and refinement trace transplant verbatim.

pub mod hash;

use cfa::{CBool, CExpr, CLval, Cfa, FuncId, Op, Program, VarId, VarKind};
use dataflow::Analyses;
use std::collections::BTreeSet;

/// The content identity of one function definition, before lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnShape {
    /// The function's source name (stable across edits; the graph's
    /// join key between program versions).
    pub name: String,
    /// [`hash::fn_key`] of the definition text.
    pub key: u64,
}

/// The content identity of a whole parsed program, split into the parts
/// the derivation graph keys on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    key: u64,
    skeleton: u64,
    fns: Vec<FnShape>,
}

impl Shape {
    /// Computes the shape of a parsed program.
    pub fn of_ast(ast: &imp::ast::Program) -> Shape {
        let mut sk = hash::Fnv::new();
        sk.write_u64(1); // section: globals
        for g in &ast.globals {
            sk.write_frame(g.as_bytes());
        }
        sk.write_u64(2); // section: arrays
        for (name, len) in &ast.arrays {
            sk.write_frame(name.as_bytes());
            sk.write_u64(*len as u64);
        }
        sk.write_u64(3); // section: function signatures
        for f in &ast.functions {
            sk.write_frame(f.name.as_bytes());
            sk.write_u64(f.params.len() as u64);
            for p in &f.params {
                sk.write_frame(p.as_bytes());
            }
            sk.write_u64(f.locals.len() as u64);
            for l in &f.locals {
                sk.write_frame(l.as_bytes());
            }
        }
        Shape {
            key: hash::ast_key(ast),
            skeleton: sk.finish(),
            fns: ast
                .functions
                .iter()
                .map(|f| FnShape {
                    name: f.name.clone(),
                    key: hash::fn_key(f),
                })
                .collect(),
        }
    }

    /// The whole-program content key ([`hash::ast_key`]) — identical to
    /// `Session::content_key`, the journal record key, and the fabric's
    /// `peer_get` routing key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The *skeleton* key: globals, arrays, and every function's name,
    /// parameters, and local declarations — everything except function
    /// bodies. Two versions with equal skeletons declare the same
    /// storage and the same call targets, which is the precondition for
    /// function-granular diffing (`Session::update`).
    pub fn skeleton(&self) -> u64 {
        self.skeleton
    }

    /// Per-function shapes, in source order.
    pub fn fns(&self) -> &[FnShape] {
        &self.fns
    }

    /// The names of functions whose bodies differ from `old`, or `None`
    /// when the skeletons differ (a declaration-level change: the edit
    /// cannot be localized to function bodies and the caller must fall
    /// back to a cold build).
    pub fn changed_since(&self, old: &Shape) -> Option<Vec<String>> {
        if self.skeleton != old.skeleton || self.fns.len() != old.fns.len() {
            return None;
        }
        Some(
            self.fns
                .iter()
                .zip(&old.fns)
                .filter(|(n, o)| n.key != o.key)
                .map(|(n, _)| n.name.clone())
                .collect(),
        )
    }
}

/// The structural key of one lowered CFA: every edge's shape with its
/// operation rendered through source-level names, plus the `(name,
/// kind, length)` of every storage cell the operation touches.
///
/// Deliberately *name*-resolved: re-lowering an edited program renumbers
/// `VarId`s and `FuncId`s globally, and this key must agree between an
/// old and a new program exactly when the function's control flow and
/// semantics are untouched by the edit.
pub fn cfa_key(program: &Program, cfa: &Cfa) -> u64 {
    let mut h = hash::Fnv::new();
    h.write_frame(cfa.name().as_bytes());
    h.write_u64(cfa.n_locs() as u64);
    h.write_u64(cfa.entry().idx as u64);
    h.write_u64(cfa.exit().idx as u64);
    h.write_u64(cfa.error_locs().len() as u64);
    for &err in cfa.error_locs() {
        h.write_u64(err.idx as u64);
    }
    for &p in cfa.params() {
        h.write_frame(program.vars().name(p).as_bytes());
    }
    for &l in cfa.locals() {
        h.write_frame(program.vars().name(l).as_bytes());
    }
    for e in cfa.edges() {
        h.write_u64(e.src.idx as u64);
        h.write_u64(e.dst.idx as u64);
        h.write_frame(program.fmt_op(&e.op).as_bytes());
        // The rendered op resolves names, but two distinct cells can
        // print alike (e.g. a local shadowing nothing vs. a global in
        // another version); fold each referenced cell's identity too.
        let mut vars: Vec<cfa::VarId> = e.op.reads().iter().map(|lv| lv.base()).collect();
        if let Some(w) = e.op.write() {
            vars.push(w.base());
        }
        vars.sort();
        vars.dedup();
        for v in vars {
            h.write_frame(program.vars().name(v).as_bytes());
            match program.vars().kind(v) {
                VarKind::Global => h.write_u64(0),
                VarKind::Local(_) => h.write_u64(1),
                VarKind::Array(n) => {
                    h.write_u64(2);
                    h.write_u64(n as u64);
                }
            }
        }
    }
    h.finish()
}

/// [`cfa_key`] for every function of `program`, indexed by
/// [`FuncId::index`].
pub fn function_keys(program: &Program) -> Vec<u64> {
    program.cfas().iter().map(|c| cfa_key(program, c)).collect()
}

/// A fingerprint of the whole-program pointer analysis. Alias facts are
/// global (one address-taken site anywhere widens `pts` everywhere), so
/// per-cluster keys fold this in rather than trying to localize it.
/// Only ever compared between two in-process `Analyses` over programs
/// with equal skeletons (identical variable tables), never persisted.
pub fn alias_fingerprint(analyses: &Analyses<'_>) -> u64 {
    hash::fnv64(format!("{:?}", analyses.alias()).as_bytes())
}

/// The sound dependency set of the check cluster rooted at `f`: every
/// function whose body can influence the cluster's verdict. The
/// abstract reachability run for cluster `f` starts at `main`'s entry
/// and targets the error locations *of `f`*, so the set is:
///
/// - `f` itself and its transitive callees (they execute under the
///   target),
/// - `f`'s transitive callers (the path runs through their bodies),
/// - and, for every function `h` on that caller chain, the transitive
///   callees of every call that can execute *before* the path descends
///   toward `f` — concretely, a call edge `c` in `h` counts when a
///   *chain call* (a call to another ancestor) is intraprocedurally
///   reachable from `c`'s return location, or, for `h = f` itself, when
///   one of `f`'s error locations is.
///
/// The preceding-call rule is deliberately control-based rather than
/// data-based: a preceding callee with a `Mods` set disjoint from
/// everything the cluster reads can still decide the verdict (an
/// `assume(false)` or non-terminating loop inside it blocks the path
/// entirely), so pruning by write sets would be unsound — and the
/// certificate gate could not catch a wrongly-reused *Bug* verdict
/// whose witness path no longer exists.
///
/// Returned sorted by [`FuncId`]; equal member name sets with equal
/// per-member [`cfa_key`]s (see [`dep_key`]) imply the checker explores
/// the same state space and the prior verdict can be transplanted.
pub fn cluster_deps(analyses: &Analyses<'_>, f: FuncId) -> Vec<FuncId> {
    let cg = analyses.callgraph();
    let program = analyses.program();

    // anc: f plus its transitive callers (the descent chain from main).
    let mut anc: BTreeSet<FuncId> = BTreeSet::new();
    let mut work = vec![f];
    while let Some(g) = work.pop() {
        if anc.insert(g) {
            work.extend(cg.callers(g).iter().copied());
        }
    }

    let mut members: BTreeSet<FuncId> = anc.clone();
    // Membership alone cannot bound this walk: a callee may already be
    // a member as an *ancestor* without its own callees being closed
    // over, so each walk tracks its own visited set.
    let add_desc = |members: &mut BTreeSet<FuncId>, k: FuncId| {
        let mut seen: BTreeSet<FuncId> = BTreeSet::new();
        let mut work = vec![k];
        while let Some(g) = work.pop() {
            if seen.insert(g) {
                members.insert(g);
                work.extend(cg.callees(g).iter().copied());
            }
        }
    };
    // f's own callees always execute under the target.
    add_desc(&mut members, f);

    for &h in &anc {
        let cfa = program.cfa(h);
        // Chain calls in h: calls to other ancestors (the edges the
        // path must take to keep descending toward f). For h = f the
        // set is empty (callees of f cannot be ancestors of f in a
        // recursion-free program) and the error locations take over as
        // the "must still get there" targets.
        let chain: Vec<u32> = (0..cfa.edges().len() as u32)
            .filter(|&ei| match cfa.edge(ei).op {
                Op::Call(g) => anc.contains(&g),
                _ => false,
            })
            .collect();
        for ei in 0..cfa.edges().len() as u32 {
            let e = cfa.edge(ei);
            let Op::Call(k) = e.op else { continue };
            let precedes_chain = chain
                .iter()
                .any(|&ce| ce != ei && analyses.edge_reachable_from(e.dst, ce));
            let precedes_error = h == f
                && cfa
                    .error_locs()
                    .iter()
                    .any(|&err| analyses.reaches(e.dst, err));
            if precedes_chain || precedes_error {
                add_desc(&mut members, k);
            }
        }
    }
    members.into_iter().collect()
}

/// The memo key of one cluster verdict: the dependency set's member
/// names with their structural [`cfa_key`]s, plus the program's alias
/// fingerprint. Two program versions assigning equal `dep_key`s to a
/// cluster are indistinguishable to its check, so the stored verdict —
/// outcome, slice, refinement rounds, predicates, certificate — is
/// valid verbatim (edge and location ids transplant because the member
/// CFAs are structurally identical).
pub fn dep_key(program: &Program, fn_keys: &[u64], members: &[FuncId], alias_fp: u64) -> u64 {
    let mut h = hash::Fnv::new();
    h.write_u64(alias_fp);
    h.write_u64(members.len() as u64);
    for &m in members {
        h.write_frame(program.cfa(m).name().as_bytes());
        h.write_u64(fn_keys[m.index()]);
    }
    h.finish()
}

/// Re-expresses a predicate mined against `old` in `new`'s variable
/// ids, joining variables by *name* (re-lowering renumbers every
/// `VarId`). Returns `None` when a referenced variable no longer exists
/// in `new` — the caller drops that seed, which costs refinement rounds
/// but never correctness (seeds only warm-start CEGAR).
pub fn remap_bool(old: &Program, new: &Program, b: &CBool) -> Option<CBool> {
    let var = |v: VarId| new.vars().lookup(old.vars().name(v));
    remap_bool_with(&var, b)
}

fn remap_bool_with(var: &dyn Fn(VarId) -> Option<VarId>, b: &CBool) -> Option<CBool> {
    Some(match b {
        CBool::True => CBool::True,
        CBool::False => CBool::False,
        CBool::Cmp(op, a, b) => CBool::Cmp(*op, remap_expr_with(var, a)?, remap_expr_with(var, b)?),
        CBool::Not(i) => CBool::Not(Box::new(remap_bool_with(var, i)?)),
        CBool::And(a, b) => CBool::And(
            Box::new(remap_bool_with(var, a)?),
            Box::new(remap_bool_with(var, b)?),
        ),
        CBool::Or(a, b) => CBool::Or(
            Box::new(remap_bool_with(var, a)?),
            Box::new(remap_bool_with(var, b)?),
        ),
    })
}

fn remap_expr_with(var: &dyn Fn(VarId) -> Option<VarId>, e: &CExpr) -> Option<CExpr> {
    Some(match e {
        CExpr::Int(k) => CExpr::Int(*k),
        CExpr::Lval(lv) => CExpr::Lval(remap_lval_with(var, *lv)?),
        CExpr::ArrLoad(a, idx) => CExpr::ArrLoad(var(*a)?, Box::new(remap_expr_with(var, idx)?)),
        CExpr::AddrOf(v) => CExpr::AddrOf(var(*v)?),
        CExpr::Neg(i) => CExpr::Neg(Box::new(remap_expr_with(var, i)?)),
        CExpr::Bin(op, a, b) => CExpr::Bin(
            *op,
            Box::new(remap_expr_with(var, a)?),
            Box::new(remap_expr_with(var, b)?),
        ),
    })
}

fn remap_lval_with(var: &dyn Fn(VarId) -> Option<VarId>, lv: CLval) -> Option<CLval> {
    Some(match lv {
        CLval::Var(v) => CLval::Var(var(v)?),
        CLval::Deref(v) => CLval::Deref(var(v)?),
        CLval::Arr(v) => CLval::Arr(var(v)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(src: &str) -> Program {
        cfa::lower(&imp::parse(src).unwrap()).unwrap()
    }

    fn fid(p: &Program, name: &str) -> FuncId {
        p.func_id(name).unwrap()
    }

    fn dep_names(p: &Program, a: &Analyses<'_>, f: &str) -> Vec<String> {
        cluster_deps(a, fid(p, f))
            .into_iter()
            .map(|g| p.cfa(g).name().to_owned())
            .collect()
    }

    const DISPATCH: &str = "global s;\n\
        fn f1() { local a; a = 1; if (a < 1) { error(); } }\n\
        fn f2() { local b; b = 2; if (b < 2) { error(); } }\n\
        fn main() { s = nondet(); if (s > 0) { f1(); } else { f2(); } }\n";

    #[test]
    fn shape_diff_names_edited_functions() {
        let a = Shape::of_ast(&imp::parse(DISPATCH).unwrap());
        let b = Shape::of_ast(&imp::parse(&DISPATCH.replace("b = 2", "b = 3")).unwrap());
        assert_eq!(a.skeleton(), b.skeleton());
        assert_ne!(a.key(), b.key());
        assert_eq!(b.changed_since(&a).unwrap(), vec!["f2".to_owned()]);
        assert_eq!(a.changed_since(&a).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn shape_diff_rejects_declaration_changes() {
        let a = Shape::of_ast(&imp::parse(DISPATCH).unwrap());
        let b = Shape::of_ast(&imp::parse(&DISPATCH.replace("local b;", "local b, c;")).unwrap());
        assert_eq!(b.changed_since(&a), None, "locals are skeleton");
        let c = Shape::of_ast(&imp::parse(&format!("global t;\n{DISPATCH}")).unwrap());
        assert_eq!(c.changed_since(&a), None, "globals are skeleton");
    }

    #[test]
    fn cfa_key_survives_id_renumbering() {
        // Adding a function *before* f1 shifts every FuncId and VarId,
        // but f1's structural key must not move.
        let p = lower(DISPATCH);
        let q = lower(&format!(
            "global s;\nfn pre() {{ local z; z = 9; }}\n{}",
            &DISPATCH["global s;\n".len()..]
        ));
        assert_eq!(
            cfa_key(&p, p.cfa(fid(&p, "f1"))),
            cfa_key(&q, q.cfa(fid(&q, "f1")))
        );
        // While an edited body does move it.
        let r = lower(&DISPATCH.replace("a = 1", "a = 2"));
        assert_ne!(
            cfa_key(&p, p.cfa(fid(&p, "f1"))),
            cfa_key(&r, r.cfa(fid(&r, "f1")))
        );
    }

    #[test]
    fn dispatcher_clusters_are_independent() {
        let p = lower(DISPATCH);
        let a = Analyses::build(&p);
        // Sibling branches: the call to f2 cannot reach the chain call
        // to f1, so f2 is not a dependency of f1's cluster (and vice
        // versa) — one edit invalidates exactly one cluster.
        assert_eq!(dep_names(&p, &a, "f1"), ["f1", "main"]);
        assert_eq!(dep_names(&p, &a, "f2"), ["f2", "main"]);
    }

    #[test]
    fn sequential_calls_invalidate_suffixes() {
        let p = lower(
            "global g;\n\
             fn f1() { g = 1; if (g < 1) { error(); } }\n\
             fn f2() { if (g > 0) { error(); } }\n\
             fn main() { f1(); f2(); }\n",
        );
        let a = Analyses::build(&p);
        // f1 runs before the chain call to f2: it is in f2's set.
        assert_eq!(dep_names(&p, &a, "f2"), ["f1", "f2", "main"]);
        // Nothing precedes the chain call to f1.
        assert_eq!(dep_names(&p, &a, "f1"), ["f1", "main"]);
    }

    #[test]
    fn preceding_call_pulls_in_its_descendants() {
        let p = lower(
            "global g;\n\
             fn leaf() { g = 1; }\n\
             fn pre() { leaf(); }\n\
             fn tgt() { if (g > 0) { error(); } }\n\
             fn main() { pre(); tgt(); }\n",
        );
        let a = Analyses::build(&p);
        assert_eq!(dep_names(&p, &a, "tgt"), ["leaf", "pre", "tgt", "main"]);
    }

    #[test]
    fn call_preceding_error_inside_cluster_counts() {
        // The call to h precedes f's own error location (h == f case of
        // the preceding rule), even though h is not f's ancestor.
        let p = lower(
            "global g;\n\
             fn h() { g = 5; }\n\
             fn f() { h(); if (g > 0) { error(); } }\n\
             fn main() { f(); }\n",
        );
        let a = Analyses::build(&p);
        assert_eq!(dep_names(&p, &a, "f"), ["h", "f", "main"]);
    }

    #[test]
    fn remap_bool_joins_by_name() {
        // `pre` shifts every VarId in the second version; a predicate
        // over the first program's `a` must land on the second's `a`.
        let p = lower(DISPATCH);
        let q = lower(&format!(
            "global s;\nfn pre() {{ local z; z = 9; }}\n{}",
            &DISPATCH["global s;\n".len()..]
        ));
        let pa = p.vars().lookup("f1::a").unwrap();
        let pred = CBool::Cmp(imp::ast::CmpOp::Lt, CExpr::var(pa), CExpr::Int(1));
        let mapped = remap_bool(&p, &q, &pred).unwrap();
        let qa = q.vars().lookup("f1::a").unwrap();
        assert_eq!(
            mapped,
            CBool::Cmp(imp::ast::CmpOp::Lt, CExpr::var(qa), CExpr::Int(1))
        );
        assert_ne!(pa, qa, "the remap is not the identity");
        // A variable with no counterpart drops the seed.
        let gone = CBool::Cmp(
            imp::ast::CmpOp::Lt,
            CExpr::var(q.vars().lookup("pre::z").unwrap()),
            CExpr::Int(0),
        );
        assert_eq!(remap_bool(&q, &p, &gone), None);
    }

    #[test]
    fn dep_key_moves_only_with_members() {
        let old = lower(DISPATCH);
        let new = lower(&DISPATCH.replace("b = 2", "b = 3"));
        let (oa, na) = (Analyses::build(&old), Analyses::build(&new));
        let (ok, nk) = (function_keys(&old), function_keys(&new));
        let (ofp, nfp) = (alias_fingerprint(&oa), alias_fingerprint(&na));
        let key = |p: &Program, a: &Analyses<'_>, ks: &[u64], fp, f: &str| {
            dep_key(p, ks, &cluster_deps(a, fid(p, f)), fp)
        };
        // f1's cluster does not contain f2: its key is stable across
        // the edit. f2's own cluster key moves.
        assert_eq!(
            key(&old, &oa, &ok, ofp, "f1"),
            key(&new, &na, &nk, nfp, "f1")
        );
        assert_ne!(
            key(&old, &oa, &ok, ofp, "f2"),
            key(&new, &na, &nk, nfp, "f2")
        );
    }
}
