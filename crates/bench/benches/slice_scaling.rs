//! Criterion micro-benchmarks (experiment B1 in `DESIGN.md`).
//!
//! * `pathslice/ops=N` — Theorem 1: `PathSlice.π` is computed in time
//!   linear in `|π|` (with a linear number of `WrBt`/`By` queries, which
//!   are memoized). Throughput should stay flat as N grows.
//! * `analyses/build` — the precomputation cost (`In`/`Out`, alias,
//!   `Mods`).
//! * `solver/conjunction` — the decision procedure on trace-shaped
//!   conjunctions.
//! * `frontend/compile` — lex+parse+resolve+lower throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataflow::Analyses;
use semantics::{ExecOutcome, Interp, ReplayOracle, State};
use slicer::{PathSlicer, SliceOptions};
use workloads::{gen::generate, suite, Scale};

/// A single-module program whose bug trace length is `~6 × bound`.
fn trace_of_length(bound: i64) -> (cfa::Program, cfa::Path) {
    let mut spec = suite(Scale::Small)
        .into_iter()
        .find(|s| s.name == "make")
        .unwrap();
    spec.loop_bound = bound;
    let g = generate(&spec);
    let program = g.lower();
    let inputs = g.inputs_reaching_bug(spec.buggy_modules[0]);
    let run = Interp::run(
        &program,
        State::zeroed(&program),
        &mut ReplayOracle::new(inputs),
        200_000_000,
    );
    assert!(matches!(run.outcome, ExecOutcome::ReachedError(_)));
    (program, run.path)
}

fn bench_pathslice_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathslice");
    for bound in [50i64, 200, 800, 3200] {
        let (program, path) = trace_of_length(bound);
        let analyses = Analyses::build(&program);
        let slicer = PathSlicer::new(&analyses);
        group.throughput(Throughput::Elements(path.len() as u64));
        group.bench_with_input(BenchmarkId::new("ops", path.len()), &path, |b, path| {
            b.iter(|| slicer.slice(path, SliceOptions::default()));
        });
    }
    group.finish();
}

fn bench_analyses_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyses");
    for scale in [Scale::Small, Scale::Medium] {
        let spec = suite(scale)
            .into_iter()
            .find(|s| s.name == "openssh")
            .unwrap();
        let program = generate(&spec).lower();
        group.throughput(Throughput::Elements(program.n_edges() as u64));
        group.bench_with_input(
            BenchmarkId::new("build_edges", program.n_edges()),
            &program,
            |b, p| b.iter(|| Analyses::build(p)),
        );
    }
    group.finish();
}

fn bench_solver_conjunction(c: &mut Criterion) {
    use lia::{Atom, Formula, LinTerm, Solver, SymId};
    let mut group = c.benchmark_group("solver");
    for n in [16usize, 64, 256] {
        // x0 = 0, x_{i+1} = x_i + 1, x_n <= n (sat) — the shape of an
        // unrolled-loop trace formula.
        let mut parts = Vec::new();
        parts.push(Formula::Atom(Atom::eq(LinTerm::sym(SymId(0)))));
        for i in 0..n {
            let step = LinTerm::sym(SymId(i as u32 + 1))
                .checked_sub(&LinTerm::sym(SymId(i as u32)))
                .unwrap()
                .checked_add_const(-1)
                .unwrap();
            parts.push(Formula::Atom(Atom::eq(step)));
        }
        parts.push(Formula::Atom(Atom::le(
            LinTerm::sym(SymId(n as u32))
                .checked_add_const(-(n as i128))
                .unwrap(),
        )));
        let f = Formula::And(parts);
        let solver = Solver::new();
        group.bench_with_input(BenchmarkId::new("chain", n), &f, |b, f| {
            b.iter(|| {
                let r = solver.check(f);
                assert!(r.is_sat());
            })
        });
    }
    group.finish();
}

fn bench_frontend_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    let spec = suite(Scale::Medium)
        .into_iter()
        .find(|s| s.name == "openssh")
        .unwrap();
    let g = generate(&spec);
    group.throughput(Throughput::Bytes(g.source.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("compile_loc", g.loc),
        &g.source,
        |b, src| {
            b.iter(|| {
                let ast = imp::parse(src).unwrap();
                cfa::lower(&ast).unwrap()
            })
        },
    );
    group.finish();
}

/// The §5 future-work comparison: the `By` relation computed with dense
/// bitsets (our production implementation) vs. BDDs (the paper's
/// proposed scaling technique). All-pairs queries over the largest CFA
/// of the openssh-like program.
fn bench_by_relation(c: &mut Criterion) {
    let spec = suite(Scale::Small)
        .into_iter()
        .find(|s| s.name == "openssh")
        .unwrap();
    let program = generate(&spec).lower();
    let cfa = program
        .cfas()
        .iter()
        .max_by_key(|c| c.n_locs())
        .expect("nonempty program");
    let mut group = c.benchmark_group("by_relation");
    group.throughput(Throughput::Elements((cfa.n_locs() * cfa.n_locs()) as u64));
    group.bench_function(BenchmarkId::new("bitset_allpairs", cfa.n_locs()), |b| {
        b.iter(|| {
            let an = Analyses::build(&program);
            let mut hits = 0usize;
            for avoid in cfa.locs() {
                for pc in cfa.locs() {
                    hits += usize::from(an.can_bypass(pc, avoid));
                }
            }
            hits
        })
    });
    group.bench_function(BenchmarkId::new("bdd_allpairs", cfa.n_locs()), |b| {
        b.iter(|| {
            let mut by = dataflow::BddBy::build(cfa);
            let mut hits = 0usize;
            for avoid in cfa.locs() {
                for pc in cfa.locs() {
                    hits += usize::from(by.can_bypass(pc, avoid));
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pathslice_linear, bench_analyses_build, bench_solver_conjunction, bench_frontend_compile, bench_by_relation
}
criterion_main!(benches);
