//! Machine-readable benchmark reports — the `BENCH_*.json` artifacts.
//!
//! Every bench binary accepts `--json`; when passed, the run's rows are
//! collected into a [`BenchReport`] and written to `BENCH_<bench>.json`
//! in the current directory (the repo root when launched via `cargo
//! run` from there). The schema is `pathslice-bench/v1`, documented in
//! `DESIGN.md` §8 and round-trip tested against the hand-rolled parser
//! in [`obs::json`]:
//!
//! ```json
//! {
//!   "schema": "pathslice-bench/v1",
//!   "bench": "table1",
//!   "scale": "medium",
//!   "config": { "jobs": 1, "retries": 0, "time_budget_s": 60.0, ... },
//!   "rows": [ { "name": "fcron", "variant": "default",
//!               "fields": { "loc": 1803, "safe": 7, ... },
//!               "times_s": { "total": 1.9, "max": 0.4 },
//!               "phases_us": { "reach": { "count": 9, "total_us": ..,
//!                                         "self_us": .. }, ... },
//!               "counters": { "lia.checks": 124, ... } }, ... ],
//!   "points": [ { "trace_ops": 5211, "slice_ops": 12 }, ... ],
//!   "counters": { ... global end-of-run totals ... }
//! }
//! ```
//!
//! `fields` holds the bench's integer columns (Table 1 stats, ablation
//! slice sizes — whatever the binary measures); `phases_us` and
//! `counters` are filled only when tracing was enabled for the run.

use crate::ProgramRow;
use obs::json::{Json, JsonError};
use obs::HistogramSnapshot;

/// One phase's aggregated wall time inside a row (mirror of
/// [`obs::PhaseStat`], keyed by span name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Span name (`reach`, `slice`, `encode`, `solve`, `refine`, …).
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total wall time, including children, in microseconds.
    pub total_us: u64,
    /// Total *self* time (children subtracted), in microseconds.
    pub self_us: u64,
}

/// One measured row — a program, or a (program, variant) cell for
/// ablations that run the same program under several configurations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    /// Program name (Table 1 row).
    pub name: String,
    /// Configuration variant (`"default"`, `"identity"`, `"sliced"`,
    /// …); distinguishes the columns of an ablation matrix.
    pub variant: String,
    /// Integer columns, in display order.
    pub fields: Vec<(String, i64)>,
    /// Wall-clock columns, in seconds.
    pub times_s: Vec<(String, f64)>,
    /// Per-phase timings (empty when tracing was off).
    pub phases: Vec<PhaseRow>,
    /// Counter deltas attributable to this row (empty when off).
    pub counters: Vec<(String, u64)>,
    /// Full latency distributions by name (`latency_us`, …), for rows
    /// that measure per-request quantiles (serve_bench). Bucket-exact
    /// round-trip via [`HistogramSnapshot::to_json`]; empty for most
    /// benches.
    pub hists: Vec<(String, HistogramSnapshot)>,
}

impl Row {
    /// Builds a report row from a driven workload result.
    pub fn from_program(r: &ProgramRow, variant: &str) -> Row {
        Row {
            name: r.name.clone(),
            variant: variant.to_owned(),
            fields: vec![
                ("seed".into(), r.seed as i64),
                ("loc".into(), r.loc as i64),
                ("procedures".into(), r.procedures as i64),
                ("checks".into(), r.checks as i64),
                ("sites".into(), r.sites as i64),
                ("safe".into(), r.safe as i64),
                ("errors".into(), r.errors as i64),
                ("timeouts".into(), r.timeouts as i64),
                ("internal_errors".into(), r.internal_errors as i64),
                ("mismatches".into(), r.mismatches as i64),
                ("retries".into(), r.retries as i64),
                ("degraded".into(), r.degraded as i64),
                ("refinements".into(), r.refinements as i64),
                ("abstract_states".into(), r.abstract_states as i64),
            ],
            times_s: vec![
                ("total".into(), r.total_time.as_secs_f64()),
                ("max".into(), r.max_time.as_secs_f64()),
            ],
            phases: r
                .phases
                .iter()
                .map(|(name, s)| PhaseRow {
                    name: name.clone(),
                    count: s.count,
                    total_us: s.total_us,
                    self_us: s.self_us,
                })
                .collect(),
            counters: r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            hists: Vec::new(),
        }
    }
}

/// A complete machine-readable bench run (`pathslice-bench/v1`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// Bench name (`table1`, `fig6`, `ablation_slicing`, …).
    pub bench: String,
    /// Workload scale (`small` / `medium` / `full`).
    pub scale: String,
    /// The knobs needed to regenerate the run: jobs, retries, budgets,
    /// reducer, seeds — whatever the binary deems relevant.
    pub config: Vec<(String, Json)>,
    /// Per-program (or per-program-per-variant) measurements.
    pub rows: Vec<Row>,
    /// Scatter points for the figure benches: `(trace_ops, slice_ops)`.
    pub points: Vec<(u64, u64)>,
    /// Global end-of-run counter totals (all rows summed, including any
    /// work outside `run_workload_driven`).
    pub counters: Vec<(String, u64)>,
}

/// Format marker; bumped on breaking schema changes.
pub const BENCH_SCHEMA: &str = "pathslice-bench/v1";

impl BenchReport {
    /// Starts an empty report for `bench` at `scale`.
    pub fn new(bench: &str, scale: &str) -> BenchReport {
        BenchReport {
            bench: bench.to_owned(),
            scale: scale.to_owned(),
            ..BenchReport::default()
        }
    }

    /// Records a regeneration knob.
    pub fn config(&mut self, key: &str, value: Json) {
        self.config.push((key.to_owned(), value));
    }

    /// Appends a row built from a driven workload.
    pub fn push_program(&mut self, row: &ProgramRow, variant: &str) {
        self.rows.push(Row::from_program(row, variant));
    }

    /// Captures the current global counter totals (call once, at the
    /// end of the run).
    pub fn capture_counters(&mut self) {
        self.counters = obs::counters()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();
    }

    /// Serializes to the `pathslice-bench/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let phase_obj = |p: &PhaseRow| {
            Json::Obj(vec![
                ("count".into(), Json::Num(p.count as i64)),
                ("total_us".into(), Json::Num(p.total_us as i64)),
                ("self_us".into(), Json::Num(p.self_us as i64)),
            ])
        };
        let counters_obj = |cs: &[(String, u64)]| {
            Json::Obj(
                cs.iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as i64)))
                    .collect(),
            )
        };
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(r.name.clone())),
                    ("variant".into(), Json::Str(r.variant.clone())),
                    (
                        "fields".into(),
                        Json::Obj(
                            r.fields
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                    (
                        "times_s".into(),
                        Json::Obj(
                            r.times_s
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Float(*v)))
                                .collect(),
                        ),
                    ),
                    (
                        "phases_us".into(),
                        Json::Obj(
                            r.phases
                                .iter()
                                .map(|p| (p.name.clone(), phase_obj(p)))
                                .collect(),
                        ),
                    ),
                    ("counters".into(), counters_obj(&r.counters)),
                    (
                        "hists".into(),
                        Json::Obj(
                            r.hists
                                .iter()
                                .map(|(k, h)| (k.clone(), h.to_json()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let points = self
            .points
            .iter()
            .map(|&(t, s)| {
                Json::Obj(vec![
                    ("trace_ops".into(), Json::Num(t as i64)),
                    ("slice_ops".into(), Json::Num(s as i64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(BENCH_SCHEMA.into())),
            ("bench".into(), Json::Str(self.bench.clone())),
            ("scale".into(), Json::Str(self.scale.clone())),
            ("config".into(), Json::Obj(self.config.clone())),
            ("rows".into(), Json::Arr(rows)),
            ("points".into(), Json::Arr(points)),
            ("counters".into(), counters_obj(&self.counters)),
        ])
    }

    /// Parses a `pathslice-bench/v1` document back into a report.
    pub fn from_json(text: &str) -> Result<BenchReport, JsonError> {
        let bad = |m: &str| JsonError {
            message: m.to_owned(),
            at: 0,
        };
        let doc = Json::parse(text)?;
        let str_field = |j: &Json, k: &str| -> Result<String, JsonError> {
            j.field(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("missing string field `{k}`")))
        };
        if str_field(&doc, "schema")? != BENCH_SCHEMA {
            return Err(bad("not a pathslice-bench/v1 document"));
        }
        let obj_pairs = |j: Option<&Json>, what: &str| -> Result<Vec<(String, Json)>, JsonError> {
            match j {
                Some(Json::Obj(pairs)) => Ok(pairs.clone()),
                _ => Err(bad(&format!("`{what}` is not an object"))),
            }
        };
        let u64_pairs = |j: Option<&Json>, what: &str| -> Result<Vec<(String, u64)>, JsonError> {
            obj_pairs(j, what)?
                .into_iter()
                .map(|(k, v)| match v.as_i64() {
                    Some(n) if n >= 0 => Ok((k, n as u64)),
                    _ => Err(bad(&format!("`{what}.{k}` is not a non-negative integer"))),
                })
                .collect()
        };
        let mut report = BenchReport::new(&str_field(&doc, "bench")?, &str_field(&doc, "scale")?);
        report.config = obj_pairs(doc.field("config"), "config")?;
        report.counters = u64_pairs(doc.field("counters"), "counters")?;
        for row in doc
            .field("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("`rows` is not an array"))?
        {
            let mut r = Row {
                name: str_field(row, "name")?,
                variant: str_field(row, "variant")?,
                ..Row::default()
            };
            for (k, v) in obj_pairs(row.field("fields"), "fields")? {
                r.fields
                    .push((k.clone(), v.as_i64().ok_or_else(|| bad("bad field"))?));
            }
            for (k, v) in obj_pairs(row.field("times_s"), "times_s")? {
                r.times_s
                    .push((k.clone(), v.as_f64().ok_or_else(|| bad("bad time"))?));
            }
            for (name, p) in obj_pairs(row.field("phases_us"), "phases_us")? {
                let num = |k: &str| -> Result<u64, JsonError> {
                    match p.field(k).and_then(Json::as_i64) {
                        Some(n) if n >= 0 => Ok(n as u64),
                        _ => Err(bad(&format!("phase `{name}` missing `{k}`"))),
                    }
                };
                let (count, total_us, self_us) = (num("count")?, num("total_us")?, num("self_us")?);
                r.phases.push(PhaseRow {
                    name,
                    count,
                    total_us,
                    self_us,
                });
            }
            r.counters = u64_pairs(row.field("counters"), "counters")?;
            // `hists` is optional: reports written before the telemetry
            // layer (and most benches) simply omit it.
            if let Some(Json::Obj(pairs)) = row.field("hists") {
                for (k, v) in pairs {
                    r.hists.push((k.clone(), HistogramSnapshot::from_json(v)?));
                }
            }
            report.rows.push(r);
        }
        for p in doc
            .field("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("`points` is not an array"))?
        {
            let num = |k: &str| -> Result<u64, JsonError> {
                match p.field(k).and_then(Json::as_i64) {
                    Some(n) if n >= 0 => Ok(n as u64),
                    _ => Err(bad(&format!("point missing `{k}`"))),
                }
            };
            report.points.push((num("trace_ops")?, num("slice_ops")?));
        }
        Ok(report)
    }

    /// Writes `BENCH_<bench>.json` into the current directory and
    /// returns the path written.
    pub fn write(&self) -> std::io::Result<String> {
        let path = format!("BENCH_{}.json", self.bench);
        std::fs::write(&path, self.to_json().to_text() + "\n")?;
        Ok(path)
    }
}

/// The shared `--json` epilogue for bench binaries: capture global
/// counters, write `BENCH_<bench>.json`, and report on stderr.
pub fn finish_json_report(mut report: BenchReport) {
    report.capture_counters();
    match report.write() {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("cannot write BENCH_{}.json: {e}", report.bench),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut rep = BenchReport::new("table1", "medium");
        rep.config("jobs", Json::Num(4));
        rep.config("time_budget_s", Json::Float(60.0));
        rep.config("reducer", Json::Str("path-slice".into()));
        rep.rows.push(Row {
            name: "fcron".into(),
            variant: "default".into(),
            fields: vec![("loc".into(), 1803), ("safe".into(), 7)],
            times_s: vec![("total".into(), 1.25)],
            phases: vec![PhaseRow {
                name: "reach".into(),
                count: 9,
                total_us: 123_456,
                self_us: 120_000,
            }],
            counters: vec![("lia.checks".into(), 321)],
            hists: vec![(
                "latency_us".into(),
                HistogramSnapshot {
                    count: 3,
                    sum: 900,
                    buckets: vec![(255, 1), (511, 2)],
                },
            )],
        });
        rep.points.push((5211, 12));
        rep.counters = vec![("lia.checks".into(), 321), ("slice.edges_kept".into(), 44)];
        rep
    }

    #[test]
    fn report_round_trips_through_parser() {
        let rep = sample();
        let text = rep.to_json().to_text();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(rep, back);
        // And the Json tree itself survives a re-parse unchanged.
        assert_eq!(Json::parse(&text).unwrap(), rep.to_json());
    }

    #[test]
    fn schema_marker_is_checked() {
        let err = BenchReport::from_json("{\"schema\":\"nope\"}").unwrap_err();
        assert!(err.message.contains("pathslice-bench"), "{err}");
    }

    #[test]
    fn row_from_program_carries_retries() {
        let row = ProgramRow {
            name: "x".into(),
            seed: 7,
            loc: 1,
            procedures: 1,
            checks: 1,
            sites: 1,
            safe: 1,
            errors: 0,
            timeouts: 0,
            internal_errors: 0,
            mismatches: 0,
            total_time: std::time::Duration::from_millis(10),
            max_time: std::time::Duration::from_millis(10),
            refinements: 2,
            abstract_states: 5,
            retries: 3,
            degraded: 1,
            phases: Default::default(),
            counters: Default::default(),
            traces: Vec::new(),
        };
        let r = Row::from_program(&row, "default");
        let get = |k: &str| r.fields.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("retries"), 3);
        assert_eq!(get("degraded"), 1);
    }
}
