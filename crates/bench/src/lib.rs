//! `bench` — the experiment harness regenerating every table and figure
//! of the paper's evaluation (§5). See `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for recorded results.
//!
//! Binaries:
//!
//! * `table1` — Table 1: per-program LOC, procedures, checks, results,
//!   times, refinement counts.
//! * `fig5` — Figure 5: trace size vs. slice percentage over all
//!   counterexamples of the application suite.
//! * `fig6` — Figure 6: the same scatter for the gcc-scale program.
//! * `ablation_slicing` — A1: identity reducer vs. path slicing.
//! * `ablation_skipfn` — A2: the §4.2 skip-functions optimization.
//! * `ablation_earlyunsat` — A3: the §4.2 early-unsat optimization.
//! * `serve_bench` — daemon latency under load, split by cache verdict.
//! * `bench_diff` — the regression gate: diffs a fresh
//!   `pathslice-bench/v1` report against a committed baseline
//!   (`results/history/`) with noise-aware thresholds ([`diff`]).
//!
//! Criterion benches (`cargo bench -p bench`) cover the Theorem 1
//! linear-time claim and the supporting analyses.

use blastlite::{
    run_clusters, CheckOutcome, CheckerConfig, DriverConfig, RetryPolicy, TraceRecord,
};
use dataflow::Analyses;
use semantics::{ExecOutcome, Interp, ReplayOracle, State};
use slicer::{PathSlicer, SliceOptions};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;
use workloads::{GeneratedProgram, Scale, WorkloadSpec};

pub mod diff;
pub mod report;

pub use report::{finish_json_report, BenchReport, PhaseRow, Row};

/// The lowercase scale name as it appears on the command line and in
/// `BENCH_*.json` reports.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Full => "full",
    }
}

/// Parses a scale name from argv (`small` / `medium` / `full`).
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        _ => Scale::Medium,
    }
}

/// Whether `--json` was passed anywhere on the command line.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Builds a [`DriverConfig`] from the `--jobs <n>` / `--retries <k>`
/// flags, if present on the command line. Also wires the process-wide
/// SIGINT token into the driver, the same way `pathslice check` does:
/// Ctrl-C cancels in-flight clusters gracefully, the bench's epilogue
/// (JSON report, [`flush_trace_out`]) still runs, and no span data is
/// lost.
pub fn driver_from_args() -> DriverConfig {
    let args: Vec<String> = std::env::args().collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let mut driver = DriverConfig::sequential();
    if let Some(j) = value("--jobs") {
        driver.jobs = j;
    }
    if let Some(k) = value("--retries") {
        driver.retry = RetryPolicy::retries(k);
    }
    rt::install_sigint_handler();
    driver.cancel = Some(rt::shutdown_token());
    if trace_out_path().is_some() {
        obs::set_enabled(true);
    }
    driver
}

/// The `--trace-out <spans.json>` flag, if present on the command line
/// (parsed once; bench binaries are single-invocation processes).
pub fn trace_out_path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--trace-out")
            .and_then(|i| args.get(i + 1).cloned())
    })
    .as_deref()
}

/// Spans drained by [`run_workload_driven`] (which consumes the global
/// buffer per workload to compute phase totals), retained for the
/// end-of-run `--trace-out` dump.
static TRACE_BUFFER: Mutex<Vec<obs::SpanRecord>> = Mutex::new(Vec::new());

fn lock_trace_buffer() -> std::sync::MutexGuard<'static, Vec<obs::SpanRecord>> {
    TRACE_BUFFER
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The shared `--trace-out` epilogue for bench binaries: writes every
/// span recorded during the run (including the tail of a SIGINT-cut
/// one) as a `pathslice-spans/v1` document, through the same
/// [`obs::write_spans_to`] path `pathslice check` and `pathslice serve`
/// use. A no-op without the flag.
pub fn flush_trace_out() {
    let Some(path) = trace_out_path() else { return };
    let mut spans = std::mem::take(&mut *lock_trace_buffer());
    spans.extend(obs::take_spans());
    match obs::write_spans_to(path, &spans) {
        Ok(()) => eprintln!("wrote {} span(s) to {path}", spans.len()),
        Err(e) => eprintln!("{e}"),
    }
}

/// The Table 1 row for one benchmark program.
#[derive(Debug, Clone)]
pub struct ProgramRow {
    /// Program name.
    pub name: String,
    /// Generation seed (the workload is fully deterministic given the
    /// scale and this seed).
    pub seed: u64,
    /// Non-blank generated source lines.
    pub loc: usize,
    /// Number of procedures.
    pub procedures: usize,
    /// Check clusters (functions that can call `error`).
    pub checks: usize,
    /// Total instrumented error sites.
    pub sites: usize,
    /// Checks proven safe.
    pub safe: usize,
    /// Checks with a confirmed error trace.
    pub errors: usize,
    /// Checks that hit a budget.
    pub timeouts: usize,
    /// Checks the driver isolated after an internal fault (panic).
    pub internal_errors: usize,
    /// Checks whose certificate failed independent validation
    /// (`--validate` mode).
    pub mismatches: usize,
    /// Total time over finished checks.
    pub total_time: Duration,
    /// Maximum single-check time (finished checks).
    pub max_time: Duration,
    /// Total refinement iterations (= abstract counterexamples).
    pub refinements: usize,
    /// Total abstract states explored across all checks.
    pub abstract_states: usize,
    /// Retry attempts beyond each cluster's first (total driver
    /// re-runs; 0 unless a `RetryPolicy` is active and something
    /// failed).
    pub retries: usize,
    /// Clusters whose final attempt ran under a degraded (retry-ladder)
    /// configuration rather than the requested one.
    pub degraded: usize,
    /// Per-phase wall-time totals for this workload, from the span
    /// layer. Empty unless `obs` tracing is enabled.
    pub phases: BTreeMap<String, obs::PhaseStat>,
    /// Counter deltas attributable to this workload (current minus the
    /// snapshot taken at entry). Empty unless `obs` is enabled.
    pub counters: BTreeMap<String, u64>,
    /// Every (trace, slice) size pair seen (for Figure 5).
    pub traces: Vec<TraceRecord>,
}

/// Runs the full per-function check battery on one workload,
/// sequentially with no retries. See [`run_workload_driven`].
pub fn run_workload(spec: &WorkloadSpec, config: CheckerConfig) -> ProgramRow {
    run_workload_driven(spec, config, &DriverConfig::sequential())
}

/// Runs the full per-function check battery on one workload through the
/// fault-tolerant driver (worker threads, retry ladder, panic
/// isolation).
pub fn run_workload_driven(
    spec: &WorkloadSpec,
    config: CheckerConfig,
    driver: &DriverConfig,
) -> ProgramRow {
    let generated = workloads::gen::generate(spec);
    let program = generated.lower();
    // Snapshot the metric registry so the row records only this
    // workload's deltas; drain any spans left over from a previous one.
    let counters_before = obs::counters();
    let _ = obs::take_spans();
    let driven = run_clusters(&program, config, driver);
    let summary = driven.summary();
    let reports = driven.into_cluster_reports();
    let spans = obs::take_spans();
    let phases = obs::phase_totals(&spans);
    if trace_out_path().is_some() {
        lock_trace_buffer().extend(spans);
    }
    let counters = obs::counters()
        .into_iter()
        .filter_map(|(k, v)| {
            let delta = v - counters_before.get(k).copied().unwrap_or(0);
            (delta > 0).then(|| (k.to_owned(), delta))
        })
        .collect();
    let mut row = ProgramRow {
        name: spec.name.clone(),
        seed: spec.seed,
        loc: generated.loc,
        procedures: generated.n_functions,
        checks: generated.n_check_clusters,
        sites: generated.n_error_sites,
        safe: 0,
        errors: 0,
        timeouts: 0,
        internal_errors: 0,
        mismatches: 0,
        total_time: Duration::ZERO,
        max_time: Duration::ZERO,
        refinements: 0,
        abstract_states: 0,
        retries: summary.retries,
        degraded: summary.degraded_clusters,
        phases,
        counters,
        traces: Vec::new(),
    };
    for r in reports {
        match &r.report.outcome {
            CheckOutcome::Safe => row.safe += 1,
            CheckOutcome::Bug { .. } => row.errors += 1,
            CheckOutcome::Timeout(_) => row.timeouts += 1,
            CheckOutcome::InternalError { .. } => row.internal_errors += 1,
            CheckOutcome::CertificateMismatch { .. } => row.mismatches += 1,
        }
        if !r.report.outcome.is_timeout() {
            row.total_time += r.report.wall;
            row.max_time = row.max_time.max(r.report.wall);
        }
        row.refinements += r.report.refinements;
        row.abstract_states += r.report.abstract_states;
        row.traces.extend(r.report.traces.iter().copied());
    }
    row
}

/// Prints Table 1 in the paper's column layout.
pub fn print_table1(rows: &[ProgramRow]) {
    println!(
        "{:<10} {:>7} {:>10} {:>9} {:>12} {:>11} {:>10} {:>12}",
        "Program", "LOC", "Procedures", "Checks", "Results", "Total(s)", "Max(s)", "Refinements"
    );
    println!("{}", "-".repeat(89));
    for r in rows {
        println!(
            "{:<10} {:>7} {:>10} {:>6}/{:<3} {:>4}/{}/{:<3} {:>11.2} {:>10.2} {:>12}",
            r.name,
            r.loc,
            r.procedures,
            r.checks,
            r.sites,
            r.safe,
            r.errors,
            r.timeouts,
            r.total_time.as_secs_f64(),
            r.max_time.as_secs_f64(),
            r.refinements,
        );
    }
    for r in rows {
        if r.internal_errors > 0 {
            println!(
                "# {}: {} check(s) ended in InternalError (isolated by the driver)",
                r.name, r.internal_errors
            );
        }
        if r.mismatches > 0 {
            println!(
                "# {}: {} check(s) failed certificate validation (CertificateMismatch)",
                r.name, r.mismatches
            );
        }
        if r.retries > 0 {
            println!(
                "# {}: {} retry attempt(s), {} cluster(s) finished degraded",
                r.name, r.retries, r.degraded
            );
        }
    }
}

/// A Figure 5/6 scatter point.
#[derive(Debug, Clone, Copy)]
pub struct FigPoint {
    /// Original trace size (operations).
    pub trace_ops: usize,
    /// Slice size (operations).
    pub slice_ops: usize,
}

impl FigPoint {
    /// Slice size as a percentage of trace size.
    pub fn ratio_percent(&self) -> f64 {
        if self.trace_ops == 0 {
            return 0.0;
        }
        self.slice_ops as f64 * 100.0 / self.trace_ops as f64
    }
}

/// Drives a concrete execution into each planted bug of `generated`
/// (sweeping loop bounds happens at the caller), slices the resulting
/// long feasible trace, and returns the scatter points.
pub fn executed_trace_points(generated: &GeneratedProgram) -> Vec<FigPoint> {
    let program = generated.lower();
    let analyses = Analyses::build(&program);
    let slicer = PathSlicer::new(&analyses);
    let mut out = Vec::new();
    for &m in &generated.spec.buggy_modules {
        let inputs = generated.inputs_reaching_bug(m);
        let run = Interp::run(
            &program,
            State::zeroed(&program),
            &mut ReplayOracle::new(inputs),
            200_000_000,
        );
        if !matches!(run.outcome, ExecOutcome::ReachedError(_)) {
            continue;
        }
        let result = slicer.slice(&run.path, SliceOptions::default());
        out.push(FigPoint {
            trace_ops: run.path.len(),
            slice_ops: result.kept.len(),
        });
    }
    out
}

/// Prints a Figure 5/6 series as JSON lines (one `{"trace_ops": …,
/// "slice_ops": …, "ratio_percent": …}` object per line) for plotting.
pub fn print_fig_points_json(points: &mut [FigPoint]) {
    points.sort_by_key(|p| p.trace_ops);
    for p in points.iter() {
        println!(
            "{{\"trace_ops\": {}, \"slice_ops\": {}, \"ratio_percent\": {:.6}}}",
            p.trace_ops,
            p.slice_ops,
            p.ratio_percent()
        );
    }
}

/// Prints a Figure 5/6-style series sorted by trace size, plus the
/// paper's summary statistics (average ratio; ratio bands by size).
pub fn print_fig_points(label: &str, points: &mut [FigPoint]) {
    points.sort_by_key(|p| p.trace_ops);
    println!("# {label}");
    println!("{:>12} {:>12} {:>10}", "trace_ops", "slice_ops", "ratio_%");
    for p in points.iter() {
        println!(
            "{:>12} {:>12} {:>10.4}",
            p.trace_ops,
            p.slice_ops,
            p.ratio_percent()
        );
    }
    if points.is_empty() {
        return;
    }
    let avg: f64 = points.iter().map(FigPoint::ratio_percent).sum::<f64>() / points.len() as f64;
    println!("# points: {}", points.len());
    println!("# average ratio: {avg:.3}%");
    for (lo, hi) in [(0usize, 1000usize), (1000, 5000), (5000, usize::MAX)] {
        let band: Vec<&FigPoint> = points
            .iter()
            .filter(|p| p.trace_ops >= lo && p.trace_ops < hi)
            .collect();
        if band.is_empty() {
            continue;
        }
        let worst = band
            .iter()
            .map(|p| p.ratio_percent())
            .fold(0.0f64, f64::max);
        println!(
            "# traces in [{lo}, {}): {} points, worst ratio {worst:.4}%",
            if hi == usize::MAX {
                "inf".into()
            } else {
                hi.to_string()
            },
            band.len(),
        );
    }
}

/// Renders a Figure 5/6-style log-log scatter (trace size vs. slice
/// percentage) as a standalone SVG, mirroring the paper's axes: x =
/// original trace size (log), y = slice size as % of the original (log).
pub fn svg_scatter(title: &str, points: &[FigPoint]) -> String {
    use std::fmt::Write as _;
    let (w, h) = (720.0f64, 480.0f64);
    let (ml, mr, mt, mb) = (70.0, 20.0, 40.0, 55.0);
    let (pw, ph) = (w - ml - mr, h - mt - mb);
    let xmax = points
        .iter()
        .map(|p| p.trace_ops)
        .max()
        .unwrap_or(10)
        .max(10) as f64;
    let xlog_max = xmax.log10().ceil().max(1.0);
    // y spans 0.001% .. 100%.
    let (ylog_min, ylog_max) = (-3.0f64, 2.0f64);
    let xpix = |v: f64| ml + (v.max(1.0).log10() / xlog_max) * pw;
    let ypix = |v: f64| mt + (1.0 - (v.max(0.001).log10() - ylog_min) / (ylog_max - ylog_min)) * ph;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\" font-size=\"12\">"
    );
    let _ = writeln!(s, "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>");
    let _ = writeln!(
        s,
        "<text x=\"{}\" y=\"24\" text-anchor=\"middle\" font-size=\"15\">{}</text>",
        w / 2.0,
        title
    );
    // Gridlines + ticks.
    for e in 0..=(xlog_max as i32) {
        let x = xpix(10f64.powi(e));
        let _ = writeln!(
            s,
            "<line x1=\"{x:.1}\" y1=\"{mt}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#ddd\"/>",
            mt + ph
        );
        let _ = writeln!(
            s,
            "<text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">1e{e}</text>",
            mt + ph + 18.0
        );
    }
    for e in (ylog_min as i32)..=(ylog_max as i32) {
        let y = ypix(10f64.powi(e));
        let _ = writeln!(
            s,
            "<line x1=\"{ml}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" stroke=\"#ddd\"/>",
            ml + pw
        );
        let _ = writeln!(
            s,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">1e{e}%</text>",
            ml - 6.0,
            y + 4.0
        );
    }
    // Axes.
    let _ = writeln!(
        s,
        "<rect x=\"{ml}\" y=\"{mt}\" width=\"{pw}\" height=\"{ph}\" fill=\"none\" stroke=\"#333\"/>"
    );
    let _ = writeln!(
        s,
        "<text x=\"{}\" y=\"{:.1}\" text-anchor=\"middle\">original trace size (operations)</text>",
        ml + pw / 2.0,
        h - 12.0
    );
    let _ = writeln!(
        s,
        "<text x=\"16\" y=\"{:.1}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {:.1})\">\
         slice size (% of trace)</text>",
        mt + ph / 2.0,
        mt + ph / 2.0
    );
    // Points.
    for p in points {
        let _ = writeln!(
            s,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#1f77b4\" fill-opacity=\"0.55\"/>",
            xpix(p.trace_ops as f64),
            ypix(p.ratio_percent())
        );
    }
    s.push_str("</svg>\n");
    s
}

/// If `--svg <path>` was passed, writes the scatter there and reports.
pub fn maybe_write_svg(title: &str, points: &[FigPoint]) {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--svg" {
            if let Some(path) = args.get(i + 1) {
                let svg = svg_scatter(title, points);
                match std::fs::write(path, svg) {
                    Ok(()) => eprintln!("wrote {path}"),
                    Err(e) => eprintln!("cannot write {path}: {e}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blastlite::Reducer;

    #[test]
    fn small_fcron_checks_all_safe() {
        let spec = &workloads::suite(Scale::Small)[0];
        let config = CheckerConfig {
            reducer: Reducer::path_slice(),
            time_budget: Duration::from_secs(30),
            ..CheckerConfig::default()
        };
        let row = run_workload(spec, config);
        assert_eq!(row.errors, 0, "{row:?}");
        assert_eq!(row.timeouts, 0, "{row:?}");
        assert_eq!(row.safe, row.checks, "{row:?}");
        assert!(row.refinements >= row.checks, "each check needs refinement");
    }

    #[test]
    fn svg_scatter_is_wellformed() {
        let points = vec![
            FigPoint {
                trace_ops: 50,
                slice_ops: 10,
            },
            FigPoint {
                trace_ops: 5_000,
                slice_ops: 12,
            },
            FigPoint {
                trace_ops: 80_000,
                slice_ops: 30,
            },
        ];
        let svg = svg_scatter("test", &points);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("1e4"), "x axis reaches 1e4+: {svg}");
    }

    #[test]
    fn executed_points_slice_below_one_percent() {
        let mut spec = workloads::suite(Scale::Small)[1].clone(); // wuftpd
        spec.loop_bound = 200;
        let g = workloads::gen::generate(&spec);
        let points = executed_trace_points(&g);
        assert_eq!(points.len(), spec.buggy_modules.len());
        for p in &points {
            assert!(p.trace_ops > 1000, "{p:?}");
            assert!(p.ratio_percent() < 1.0, "{p:?}");
        }
    }
}
