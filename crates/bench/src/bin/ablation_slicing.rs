//! Ablation **A1** — the paper's central claim (§1, §5): *without* path
//! slicing, the counterexample analysis does not scale; the refinement
//! chases irrelevant loop unrollings and the checks time out, while the
//! path-slicing configuration finishes.
//!
//! Runs the same checks with the identity reducer and with path slicing
//! and prints the outcome matrix side by side.
//!
//! Usage: `ablation_slicing [small|medium|full] [--jobs <n>]
//! [--retries <k>] [--json]`. With `--json`, a `pathslice-bench/v1`
//! report with one row per (program, reducer) cell is written to
//! `BENCH_ablation_slicing.json`.

use blastlite::{CheckerConfig, Reducer};
use obs::json::Json;
use std::time::Duration;

fn main() {
    let scale = bench::scale_from_args();
    let json = bench::json_requested();
    if json {
        obs::set_enabled(true);
    }
    let mut rep = bench::BenchReport::new("ablation_slicing", bench::scale_name(scale));
    let budget = Duration::from_secs(20);
    println!("# A1 — counterexample reduction ablation ({budget:?}/check)");
    println!(
        "{:<10} | {:>4} {:>4} {:>4} {:>9} | {:>4} {:>4} {:>4} {:>9}",
        "", "safe", "err", "t/o", "time(s)", "safe", "err", "t/o", "time(s)"
    );
    println!(
        "{:<10} | {:^24} | {:^24}",
        "program", "identity reducer", "path slicing"
    );
    println!("{}", "-".repeat(64));
    let driver = bench::driver_from_args();
    for spec in workloads::suite(scale) {
        eprintln!("checking {} ...", spec.name);
        let ident = bench::run_workload_driven(
            &spec,
            CheckerConfig {
                reducer: Reducer::Identity,
                time_budget: budget,
                ..CheckerConfig::default()
            },
            &driver,
        );
        let sliced = bench::run_workload_driven(
            &spec,
            CheckerConfig {
                reducer: Reducer::path_slice(),
                time_budget: budget,
                ..CheckerConfig::default()
            },
            &driver,
        );
        println!(
            "{:<10} | {:>4} {:>4} {:>4} {:>9.1} | {:>4} {:>4} {:>4} {:>9.1}",
            spec.name,
            ident.safe,
            ident.errors,
            ident.timeouts,
            ident.total_time.as_secs_f64(),
            sliced.safe,
            sliced.errors,
            sliced.timeouts,
            sliced.total_time.as_secs_f64(),
        );
        rep.push_program(&ident, "identity");
        rep.push_program(&sliced, "path-slice");
    }
    println!("# expected shape: identity column accumulates timeouts; slicing column none");
    if json {
        rep.config("jobs", Json::Num(driver.jobs as i64));
        rep.config("retries", Json::Num(driver.retry.max_retries as i64));
        rep.config("time_budget_s", Json::Float(budget.as_secs_f64()));
        bench::finish_json_report(rep);
    }
    bench::flush_trace_out();
}
