//! Ablation **A1** — the paper's central claim (§1, §5): *without* path
//! slicing, the counterexample analysis does not scale; the refinement
//! chases irrelevant loop unrollings and the checks time out, while the
//! path-slicing configuration finishes.
//!
//! Runs the same checks with the identity reducer and with path slicing
//! and prints the outcome matrix side by side.
//!
//! Usage: `ablation_slicing [small|medium|full] [--jobs <n>] [--retries <k>]`.

use blastlite::{CheckerConfig, Reducer};
use std::time::Duration;

fn main() {
    let scale = bench::scale_from_args();
    let budget = Duration::from_secs(20);
    println!("# A1 — counterexample reduction ablation ({budget:?}/check)");
    println!(
        "{:<10} | {:>4} {:>4} {:>4} {:>9} | {:>4} {:>4} {:>4} {:>9}",
        "", "safe", "err", "t/o", "time(s)", "safe", "err", "t/o", "time(s)"
    );
    println!(
        "{:<10} | {:^24} | {:^24}",
        "program", "identity reducer", "path slicing"
    );
    println!("{}", "-".repeat(64));
    let driver = bench::driver_from_args();
    for spec in workloads::suite(scale) {
        eprintln!("checking {} ...", spec.name);
        let ident = bench::run_workload_driven(
            &spec,
            CheckerConfig {
                reducer: Reducer::Identity,
                time_budget: budget,
                ..CheckerConfig::default()
            },
            &driver,
        );
        let sliced = bench::run_workload_driven(
            &spec,
            CheckerConfig {
                reducer: Reducer::path_slice(),
                time_budget: budget,
                ..CheckerConfig::default()
            },
            &driver,
        );
        println!(
            "{:<10} | {:>4} {:>4} {:>4} {:>9.1} | {:>4} {:>4} {:>4} {:>9.1}",
            spec.name,
            ident.safe,
            ident.errors,
            ident.timeouts,
            ident.total_time.as_secs_f64(),
            sliced.safe,
            sliced.errors,
            sliced.timeouts,
            sliced.total_time.as_secs_f64(),
        );
    }
    println!("# expected shape: identity column accumulates timeouts; slicing column none");
}
