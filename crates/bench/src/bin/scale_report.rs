//! Prints the generated-program sizes at `full` scale — evidence that
//! the generator reaches the paper's program-size regime (openssh 50K
//! pre-processed lines / 745 procedures; gcc 2026 modeled procedures).

fn main() {
    for spec in workloads::suite(workloads::Scale::Full) {
        let g = workloads::gen::generate(&spec);
        let p = g.lower();
        cfa::validate(&p).unwrap();
        println!(
            "{:<8} {:>7} LOC {:>5} fns {:>6} edges",
            spec.name,
            g.loc,
            g.n_functions,
            p.n_edges()
        );
    }
    let g = workloads::gen::generate(&workloads::gcc_like(workloads::Scale::Full));
    let p = g.lower();
    cfa::validate(&p).unwrap();
    println!(
        "{:<8} {:>7} LOC {:>5} fns {:>6} edges",
        "gcc",
        g.loc,
        g.n_functions,
        p.n_edges()
    );
}
