//! Ablation **A2** — the §4.2 "Skipping Functions" optimization: on
//! paths with deep call stacks, slices shrink further because the guards
//! on the way into each frame are dropped (at the cost of completeness).
//!
//! Usage: `ablation_skipfn [small|medium|full] [--json]`. With
//! `--json`, a `pathslice-bench/v1` report with one row per executed
//! bug trace is written to `BENCH_ablation_skipfn.json`.

use dataflow::Analyses;
use semantics::{ExecOutcome, Interp, ReplayOracle, State};
use slicer::{PathSlicer, SliceOptions};

fn main() {
    let scale = bench::scale_from_args();
    let json = bench::json_requested();
    if json {
        obs::set_enabled(true);
    }
    let mut rep = bench::BenchReport::new("ablation_skipfn", bench::scale_name(scale));
    println!("# A2 — skip-functions optimization (slice sizes on executed bug traces)");
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>12} {:>9}",
        "program", "module", "trace_ops", "plain", "skip_fns", "shrink_%"
    );
    for mut spec in workloads::suite(scale) {
        // Deepen the wrapper stacks to make the effect visible.
        spec.wrapper_depth = spec.wrapper_depth.max(3) + 2;
        if spec.buggy_modules.is_empty() {
            continue;
        }
        let g = workloads::gen::generate(&spec);
        let program = g.lower();
        let analyses = Analyses::build(&program);
        let slicer = PathSlicer::new(&analyses);
        for &m in &spec.buggy_modules {
            let inputs = g.inputs_reaching_bug(m);
            let run = Interp::run(
                &program,
                State::zeroed(&program),
                &mut ReplayOracle::new(inputs),
                200_000_000,
            );
            if !matches!(run.outcome, ExecOutcome::ReachedError(_)) {
                continue;
            }
            let plain = slicer.slice(&run.path, SliceOptions::default());
            let skip = slicer.slice(
                &run.path,
                SliceOptions {
                    early_unsat: false,
                    skip_functions: true,
                },
            );
            let shrink = if plain.kept.is_empty() {
                0.0
            } else {
                100.0 * (plain.kept.len() - skip.kept.len()) as f64 / plain.kept.len() as f64
            };
            println!(
                "{:<10} {:>7} {:>12} {:>12} {:>12} {:>9.1}",
                spec.name,
                m,
                run.path.len(),
                plain.kept.len(),
                skip.kept.len(),
                shrink
            );
            rep.rows.push(bench::Row {
                name: spec.name.clone(),
                variant: format!("module{m}"),
                fields: vec![
                    ("seed".into(), spec.seed as i64),
                    ("trace_ops".into(), run.path.len() as i64),
                    ("plain".into(), plain.kept.len() as i64),
                    ("skip_fns".into(), skip.kept.len() as i64),
                ],
                ..bench::Row::default()
            });
        }
    }
    println!("# expected shape: skip_fns <= plain on every row (guards on the stack dropped)");
    if json {
        bench::finish_json_report(rep);
    }
}
