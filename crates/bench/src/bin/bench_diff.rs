//! The perf-regression gate: compares a fresh `pathslice-bench/v1`
//! report against a committed baseline (see `bench::diff` for the
//! metric classification and `results/history/` for the baselines CI
//! diffs against).
//!
//! Usage: `bench_diff <baseline.json|baseline-dir> <current.json>
//! [--rel-tol <f>] [--abs-slack <n>] [--time-gate]
//! [--json-out <verdict.json>]`
//!
//! Exit code: `0` clean (warnings allowed), `1` regression, `64` usage
//! or parse error.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match bench::diff::cli_main(&args, &mut out) {
        Ok(code) => {
            print!("{out}");
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("bench_diff: {e}");
            std::process::exit(64);
        }
    }
}
