//! Baseline comparison — quantifies the Related-Work claim that static
//! slicing "manage\[s\] to retain a large percentage of the original
//! program" while path slices stay tiny:
//!
//! * static slice (flow-insensitive) and PDG slice (flow-sensitive) of
//!   each planted bug's error location, as % of program edges;
//! * path slice of the executed bug trace, as % of trace operations;
//! * dynamic slice of the same trace, for the single-execution regime.
//!
//! Usage: `baseline_compare [small|medium|full]`.

use baselines::{DynamicSlicer, PdgSlicer, StaticSlicer};
use dataflow::Analyses;
use semantics::{ExecOutcome, Interp, ReplayOracle, State};
use slicer::{PathSlicer, SliceOptions};

fn main() {
    let scale = bench::scale_from_args();
    println!("# baseline comparison — slice sizes per planted bug");
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>11} {:>11} {:>11}",
        "program", "module", "static_%", "pdg_%", "trace_ops", "dynamic_%", "pathslice_%"
    );
    for spec in workloads::suite(scale) {
        if spec.buggy_modules.is_empty() {
            continue;
        }
        let g = workloads::gen::generate(&spec);
        let program = g.lower();
        let analyses = Analyses::build(&program);
        let path_slicer = PathSlicer::new(&analyses);
        let static_slicer = StaticSlicer::new(&analyses);
        let mut pdg_slicer = PdgSlicer::new(&analyses);
        for &m in &spec.buggy_modules {
            let read_fn = program.func_id(&format!("m{m}_read")).expect("read fn");
            let target = program.cfa(read_fn).error_locs()[0];
            let st = static_slicer.slice(target);
            let pdg = pdg_slicer.slice(target);

            let inputs = g.inputs_reaching_bug(m);
            let init = State::zeroed(&program);
            let run = Interp::run(
                &program,
                init.clone(),
                &mut ReplayOracle::new(inputs),
                200_000_000,
            );
            if !matches!(run.outcome, ExecOutcome::ReachedError(_)) {
                continue;
            }
            let ps = path_slicer.slice(&run.path, SliceOptions::default());
            let dynamic = DynamicSlicer::new(&analyses).slice(&run.path, &init, &run.drawn);
            println!(
                "{:<10} {:>6} {:>10.2} {:>10.2} {:>11} {:>11.3} {:>11.3}",
                spec.name,
                m,
                st.ratio_percent(&program),
                pdg.ratio_percent(&program),
                run.path.len(),
                dynamic.len() as f64 * 100.0 / run.path.len() as f64,
                ps.ratio_percent(run.path.len()),
            );
        }
    }
    println!("# note: the generated protocol workloads keep handle state cleanly apart");
    println!("# from the noise computation, so even static slices are small here. The");
    println!("# paper's static-slicing pathology needs *entangled* dataflow — measured");
    println!("# next on Ex1-at-scale.");
    println!();

    // ---- Ex1 at scale: the guard value flows out of the "complex" ----
    // helper chain on one branch, so every static slicer must retain the
    // whole chain; the path slice of the else-branch path drops it.
    println!("# Ex1-at-scale — entangled dataflow (Fig. 2 grown to program size)");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>14} {:>16}",
        "chains", "edges", "static_%", "pdg_%", "pathslice_ops", "pathslice_prog_%"
    );
    for chains in [4usize, 8, 16] {
        let mut src = String::from("global a, x;\n");
        for c in 0..chains {
            for k in (0..6).rev() {
                let call_next = if k < 5 {
                    format!("t = c{c}_h{}(t);", k + 1)
                } else {
                    String::new()
                };
                src.push_str(&format!(
                    "fn c{c}_h{k}(v) {{ local t, j; t = v; \
                     for (j = 0; j < 40; j = j + 1) {{ t = t + j; }} \
                     if (t > 50) {{ t = t - 9; }} {call_next} return t; }}\n"
                ));
            }
        }
        src.push_str("fn main() {\n    local r;\n");
        src.push_str("    if (a > 0) {\n");
        for c in 0..chains {
            src.push_str(&format!("        r = c{c}_h0(r);\n"));
        }
        src.push_str("        x = r;\n    } else { x = 0 - 1; }\n");
        src.push_str("    if (x < 0) { error(); }\n}\n");
        let ast = imp::parse(&src).expect("generated Ex1 parses");
        let program = cfa::lower(&ast).expect("lowers");
        let analyses = Analyses::build(&program);
        let target = program.cfa(program.main()).error_locs()[0];
        let st = StaticSlicer::new(&analyses).slice(target);
        let pdg = PdgSlicer::new(&analyses).slice(target);
        // Drive the else path (a <= 0): complex chains never run.
        let mut init = State::zeroed(&program);
        init.set(program.vars().lookup("a").unwrap(), -1);
        let run = Interp::run(&program, init, &mut ReplayOracle::new(vec![]), 10_000_000);
        assert!(matches!(run.outcome, ExecOutcome::ReachedError(_)));
        let ps = PathSlicer::new(&analyses).slice(&run.path, SliceOptions::default());
        println!(
            "{:<8} {:>10} {:>10.2} {:>10.2} {:>14} {:>16.3}",
            chains,
            program.n_edges(),
            st.ratio_percent(&program),
            pdg.ratio_percent(&program),
            ps.kept.len(),
            ps.kept.len() as f64 * 100.0 / program.n_edges() as f64,
        );
    }
    println!("# expected shape: static/pdg percentages stay high and flat (the chains");
    println!("# are always retained — the paper's Example 6); the path slice of the");
    println!("# else-branch path is a constant 3 operations no matter how much complex");
    println!("# computation the other branch carries.");
}
