//! Load generator for the `pathslice serve` daemon.
//!
//! Starts an in-process [`server::Server`], drives it over real TCP
//! with a fleet of persistent NDJSON connections, and reports latency
//! percentiles split by cache outcome — the experiment behind the
//! analysis cache: repeat submissions of the same (or a reformatted)
//! program must be measurably cheaper than cold ones.
//!
//! Usage:
//!
//! ```text
//! serve_bench [small|medium|full]
//!             [--requests <n>] [--concurrency <c>] [--repeat-ratio <r>]
//!             [--rate <req/s>] [--seed <s>] [--server-jobs <n>]
//!             [--pipeline <depth>] [--connections <n>]
//!             [--json] [--smoke] [--metrics-out <metrics.prom>]
//!             [--trace-out <spans.json>]
//!             [--journal <dir>] [--attach <host:port>] [--no-retry]
//!             [--drill restart|pipeline|edit] [--fabric <n>]
//!             [--functions <n>] [--edits <n>]
//! ```
//!
//! Each request is a distinct generated workload program (seed-varied)
//! with probability `1 - r`, or a re-submission of one already sent with
//! probability `r`. Requests are classified *by the response's*
//! `cache: hit|miss` field, so the split is ground truth from the
//! daemon, not a guess from the schedule. With `--rate`, send times are
//! fixed up front (open-loop: a late response makes the next sends
//! burst, and the queueing shows up as latency); without it, each
//! connection issues back-to-back.
//!
//! `--json` writes `BENCH_serve.json` (`pathslice-bench/v1`): rows
//! `all` / `cached` / `cold` with `p50`/`p95`/`p99`/`total` in
//! `times_s`, plus the full per-verdict latency distribution as an
//! [`obs::Histogram`] snapshot (`hists.latency_us`, with bucket-exact
//! `hist_p50_us`/`hist_p95_us`/`hist_p99_us` columns) so regression
//! diffs can reason about tails, not just three points. `--smoke` is
//! the CI mode: 3 requests on 1 connection (the third repeats the
//! first → must hit the cache), then asserts a clean drain and zero
//! leaked threads. `--metrics-out` fetches the daemon's Prometheus
//! exposition over the wire (`op: "metrics"`) right before the drain
//! and writes it to a file; `--trace-out` dumps the run's span trees.
//!
//! Robustness knobs: `--journal <dir>` attaches the durable verdict
//! journal to the in-process daemon; `--attach <host:port>` drives an
//! externally started daemon instead of spawning one (server-side
//! accounting is then unavailable, so it composes with neither
//! `--smoke` nor `--drill`); `--no-retry` disables the client-side
//! transport retry (default: 3 bounded attempts with backoff).
//! `--drill restart` runs the kill-and-recover drill instead of a load
//! run: journaled daemon → half the programs → `SIGKILL`-equivalent
//! crash (no flush, no compaction) → restart on the same journal →
//! assert the recovery counters and that every recovered verdict is
//! served warm, byte-identical to a cold journal-less control.
//!
//! `--pipeline <depth>` switches the load run's connections to
//! `pathslice-wire/v2` with up to `depth` requests in flight per
//! connection (frames are correlated by response id, so completions may
//! return out of order). Pipelined sends are fire-and-forget — the
//! transport retry loop does not apply; a torn connection fails its
//! in-flight window.
//!
//! `--drill pipeline` is the high-concurrency drill: `--connections`
//! (default 1024) persistent sockets are opened *simultaneously*, the
//! cache is primed with a handful of distinct programs, and every
//! connection then pipelines its share of `--requests` warm checks as
//! one v2 burst. Gates (all deterministic): zero failed requests, zero
//! sheds (`server.overloaded == 0` — warm checks ride the fast lane,
//! which must absorb the whole burst), every response `cache: hit` and
//! byte-identical to the batch `pathslice check` verdict for its
//! program. Cache-hit throughput is printed as an advisory wall-clock
//! number (CI runs on whatever core count it gets).
//!
//! `--drill edit` is the interactive-editing drill for the incremental
//! derivation graph: a journaled daemon checks a `--functions`-leaf
//! dispatcher cold, then `--edits` requests each change exactly one
//! function body. Gates: every edit routes through `Session::update`,
//! invalidates exactly one cluster, reuses every untouched cluster's
//! certificate-gated verdict (`incr.verdict_reused`), renders
//! byte-identical to a cold batch check, and the warm walls total less
//! than the cold ones; a chaos pass corrupting every `IncrReuse`
//! candidate must reject them all and still serve correct verdicts.
//! With `--json` the run writes `BENCH_incr.json` (`warm` / `cold`
//! rows with the reuse counters).
//!
//! `--fabric <n>` runs the multi-node drill instead of a load run:
//! `n` journaled, peer-enrolled daemons behind a `fabric::Router`,
//! mixed repeat-heavy load through the router, and a
//! `SIGKILL`-equivalent crash of the ring owner of the hottest key
//! mid-drain. Asserts the router sheds to the survivors with **zero**
//! failed requests after retry and **zero** wrong verdicts — every
//! response byte-identical to a single-node control — then runs the
//! corrupt-peer-certificate chaos pass: with every fetched certificate
//! damaged in flight, `fabric.peer_rejected` must rise and every
//! rejected key must re-check locally to the correct verdict. With
//! `--json` the run writes `BENCH_fabric.json` (`fabric` and `control`
//! rows, same latency columns as the serve report).

use obs::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use server::{wire, Client, Server, ServerConfig};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use workloads::gen::generate;
use workloads::WorkloadSpec;

/// One program per seed: small enough that a check is milliseconds, so
/// the setup pipeline (parse → lower → analyses) the cache elides is a
/// visible fraction of cold latency.
fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("serve-{seed}"),
        seed,
        modules: 2,
        helpers_per_module: 2,
        loop_bound: 20,
        driver_loops: 1,
        wrapper_depth: 1,
        buggy_modules: vec![1],
        multi_site_modules: 1,
    }
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    latency: Duration,
    cache_hit: bool,
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    match flag(name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad {name} value `{v}`");
            std::process::exit(64);
        }),
        None => default,
    }
}

fn os_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Drops the trailing wall-time column (`...  12.3ms`) from each render
/// line: it is real elapsed time, the only part of a verdict that may
/// legitimately differ between a warm replay and a cold re-check.
fn strip_timing(s: &str) -> Vec<String> {
    s.lines()
        .map(|l| {
            l.rsplit_once("  ")
                .map_or(l.to_owned(), |(v, _)| v.to_owned())
        })
        .collect()
}

/// `--drill restart`: the kill-and-recover drill.
///
/// Phase 1 starts a journaled daemon, checks half the programs, and
/// crashes it ([`Server::crash`]: the `SIGKILL` shape — no drain, no
/// journal flush, no compaction). Phase 2 restarts on the same journal
/// directory and asserts the recovery counters: every journaled verdict
/// recovered (each re-validated through its certificate before it may
/// serve), none rejected, no torn tail (the crash landed between
/// appends, and appends are single `write_all`s). It then resends all
/// `k` programs: the first half must come back `warm` — served from the
/// recovered verdict cache without re-running the check — and identical
/// to the pre-crash verdicts; the second half was never journaled and
/// must run cold. Phase 3 is the control: a fresh journal-less daemon
/// checks all `k` programs from scratch, and every phase-2 verdict must
/// match it byte-for-byte (modulo the wall-time column).
fn drill_restart(seed: u64, requests: usize, server_jobs: usize, retry: u32) {
    let k = (requests.clamp(4, 64) + 1) & !1; // even, bounded
    let half = k / 2;
    let journal_dir = flag("--journal").map(PathBuf::from).unwrap_or_else(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos());
        std::env::temp_dir().join(format!("pathslice-drill-{}-{nanos}", std::process::id()))
    });
    let config = || ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: server_jobs,
        journal_dir: Some(journal_dir.clone()),
        ..ServerConfig::default()
    };
    let programs: Vec<String> = (0..k as u64)
        .map(|i| generate(&spec(seed + i)).source)
        .collect();
    let send = |client: &mut Client, i: usize| -> (bool, i32, Vec<String>) {
        let mut request = wire::Request::new(&programs[i]);
        request.id = format!("drill-{i}");
        match client.request(&request) {
            Ok(wire::Response::Ok {
                warm, exit, render, ..
            }) => (warm, exit, strip_timing(&render)),
            Ok(other) => panic!("drill request {i}: unexpected response {other:?}"),
            Err(e) => panic!("drill request {i}: {e}"),
        }
    };

    // Phase 1: journaled daemon, half the programs, then the crash.
    let server = Server::start(config()).expect("bind drill server");
    let addr = server.local_addr();
    eprintln!(
        "drill restart: phase 1 on {addr}, journal {}",
        journal_dir.display()
    );
    let mut client = Client::connect_retrying(addr, retry).expect("connect phase 1");
    let before: Vec<_> = (0..half).map(|i| send(&mut client, i)).collect();
    drop(client);
    let crashed = server.crash();
    assert_eq!(crashed.requests, half as u64, "drill: phase-1 accounting");
    for (i, (warm, ..)) in before.iter().enumerate() {
        assert!(!warm, "drill: phase-1 request {i} cannot be warm");
    }
    // The crash leaks its threads instead of joining them; give them a
    // beat to observe the cancelled token before binding the successor.
    std::thread::sleep(Duration::from_millis(150));

    // Phase 2: restart on the same journal. Replay must recover every
    // appended verdict — and nothing else.
    let server = Server::start(config()).expect("restart drill server");
    let addr = server.local_addr();
    let journal = server.stats().journal.expect("journal stats");
    eprintln!(
        "drill restart: phase 2 on {addr} — {} recovered, {} rejected, {} torn",
        journal.recovered, journal.rejected, journal.torn
    );
    assert_eq!(journal.recovered, half as u64, "drill: recovery count");
    assert_eq!(
        journal.rejected, 0,
        "drill: no verdict may fail re-validation"
    );
    assert_eq!(
        journal.torn, 0,
        "drill: crash between appends tears nothing"
    );
    let mut client = Client::connect_retrying(addr, retry).expect("connect phase 2");
    let after: Vec<_> = (0..k).map(|i| send(&mut client, i)).collect();
    drop(client);
    let stats = server.shutdown();
    for (i, (warm, exit, render)) in after.iter().enumerate() {
        if i < half {
            assert!(
                warm,
                "drill: request {i} must be served warm from the journal"
            );
            assert_eq!(
                (exit, render),
                (&before[i].1, &before[i].2),
                "drill: request {i} warm verdict differs from pre-crash"
            );
        } else {
            assert!(
                !warm,
                "drill: request {i} was never journaled, cannot be warm"
            );
        }
    }
    assert_eq!(
        stats.verdicts.hits, half as u64,
        "drill: warm-hit accounting"
    );

    // Phase 3: the cold control — no journal, every program checked
    // from scratch. Journal-served verdicts must be indistinguishable.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: server_jobs,
        ..ServerConfig::default()
    })
    .expect("bind control server");
    let mut client = Client::connect_retrying(server.local_addr(), retry).expect("connect control");
    let control: Vec<_> = (0..k).map(|i| send(&mut client, i)).collect();
    drop(client);
    server.shutdown();
    for (i, (_, exit, render)) in control.iter().enumerate() {
        assert_eq!(
            (&after[i].1, &after[i].2),
            (exit, render),
            "drill: request {i} journal-served verdict differs from cold control"
        );
    }

    println!(
        "drill restart: OK ({half} verdict(s) recovered and re-validated, \
         {half} warm replay(s) byte-identical to a cold control, journal at {})",
        journal_dir.display()
    );
}

/// Reads one pipelined response off `client`, resolving it against the
/// in-flight window by id. Returns `false` when the connection is gone
/// (the remaining window is charged as failures).
fn read_pipelined(
    client: &mut Client,
    inflight: &mut HashMap<String, Instant>,
    samples: &mut Vec<Sample>,
    failures: &mut Vec<String>,
) -> bool {
    match client.read_response() {
        Ok(response) => {
            let Some(sent_at) = inflight.remove(response.id()) else {
                failures.push(format!("unsolicited response id `{}`", response.id()));
                return true;
            };
            match response {
                wire::Response::Ok { cache_hit, .. } => samples.push(Sample {
                    latency: sent_at.elapsed(),
                    cache_hit,
                }),
                other => failures.push(format!("{}: {other:?}", other.id())),
            }
            true
        }
        Err(e) => {
            for id in inflight.drain().map(|(id, _)| id) {
                failures.push(format!("{id}: connection lost ({e})"));
            }
            false
        }
    }
}

/// One connection's share of a pipelined (`--pipeline <depth>`) load
/// run: `pathslice-wire/v2` frames, a sliding window of `depth` in
/// flight, completions correlated by id.
#[allow(clippy::too_many_arguments)]
fn pipelined_connection(
    addr: SocketAddr,
    retry: u32,
    depth: usize,
    mine: Vec<(usize, u64)>,
    t0: Instant,
    interval: Option<Duration>,
) -> (Vec<Sample>, Vec<String>) {
    let mut samples: Vec<Sample> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut client = match Client::connect_retrying(addr, retry) {
        Ok(c) => c,
        Err(e) => {
            failures.push(format!("connect: {e}"));
            return (samples, failures);
        }
    };
    let mut inflight: HashMap<String, Instant> = HashMap::new();
    for (i, program_seed) in mine {
        if let Some(interval) = interval {
            // Open-loop: request i is *due* at t0 + i·Δ; if we are
            // behind, send immediately (burst).
            let due = t0 + interval * i as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        while inflight.len() >= depth.max(1) {
            if !read_pipelined(&mut client, &mut inflight, &mut samples, &mut failures) {
                return (samples, failures);
            }
        }
        let mut request = wire::Request::new(&generate(&spec(program_seed)).source);
        request.id = format!("r{i}");
        let frame = request.to_json_versioned(wire::WireVersion::V2);
        match client.send_frame(&frame) {
            Ok(()) => {
                inflight.insert(request.id, Instant::now());
            }
            Err(e) => failures.push(format!("r{i}: {e}")),
        }
    }
    while !inflight.is_empty() {
        if !read_pipelined(&mut client, &mut inflight, &mut samples, &mut failures) {
            break;
        }
    }
    (samples, failures)
}

/// `--drill pipeline`: the high-concurrency pipelining drill.
///
/// Opens `connections` persistent sockets *simultaneously* (all are
/// connected before any frame is sent), primes the daemon's cache with
/// a handful of distinct programs, then has every connection pipeline
/// its share of warm checks as one `pathslice-wire/v2` burst and read
/// the completions back by id. Every gate is deterministic: zero failed
/// requests, zero sheds (warm checks ride the fast admission lane,
/// sized here to absorb the whole burst), every response a cache hit
/// and byte-identical to the batch `pathslice check` verdict for its
/// program. Throughput is printed but not asserted — wall-clock belongs
/// to the hardware, the invariants belong to this drill.
fn drill_pipeline(
    seed: u64,
    connections: usize,
    requests: usize,
    concurrency: usize,
    server_jobs: usize,
    retry: u32,
) {
    let connections = connections.max(1);
    let per_conn = (requests / connections).max(1);
    let total = per_conn * connections;
    let distinct = 4usize.min(connections);
    let programs: Vec<String> = (0..distinct as u64)
        .map(|i| generate(&spec(seed + i)).source)
        .collect();

    // Ground truth: the batch path — the same `Session::compile` →
    // `check` → `render_verdicts` pipeline `pathslice check` runs
    // (tests/server.rs proves that path byte-identical to the CLI
    // binary's output; `bench` cannot depend on `cli` directly because
    // `pathslice bench diff` makes `cli` depend on `bench`).
    let controls: Vec<(i32, Vec<String>)> = programs
        .iter()
        .enumerate()
        .map(|(i, src)| {
            let session = blastlite::Session::compile(src, &format!("pipedrill-{i}.imp"))
                .expect("drill program compiles");
            let report = session.check(
                blastlite::CheckerConfig {
                    reducer: blastlite::Reducer::path_slice(),
                    ..blastlite::CheckerConfig::default()
                },
                &blastlite::DriverConfig::sequential(),
            );
            let reports = report.into_cluster_reports();
            let (render, exit) = blastlite::render_verdicts(session.program(), &reports);
            (exit, strip_timing(&render))
        })
        .collect();

    // A journal makes repeats *verdict*-cache hits: the priming pass
    // journals each verdict, and every pipelined request is then served
    // warm — stored render, no re-check — which is the tier this drill
    // stresses.
    let journal_dir = flag("--journal").map(PathBuf::from).unwrap_or_else(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos());
        std::env::temp_dir().join(format!(
            "pathslice-pipedrill-{}-{nanos}",
            std::process::id()
        ))
    });
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: server_jobs,
        journal_dir: Some(journal_dir),
        // The whole burst must fit the fast lane: a shed here would be
        // a config artifact, not a scheduling failure.
        fast_queue_capacity: total.max(4096),
        ..ServerConfig::default()
    })
    .expect("bind drill server");
    let addr = server.local_addr();
    eprintln!(
        "drill pipeline: {connections} connection(s) × {per_conn} warm request(s) \
         (depth {per_conn}) on {addr}"
    );

    // Prime: every distinct program once, cold, verdicts checked
    // against the batch CLI right away.
    let mut primer = Client::connect_retrying(addr, retry).expect("connect primer");
    for (i, src) in programs.iter().enumerate() {
        let mut request = wire::Request::new(src);
        request.id = format!("prime-{i}");
        match primer.request(&request) {
            Ok(wire::Response::Ok { exit, render, .. }) => {
                assert_eq!(
                    (exit, strip_timing(&render)),
                    (controls[i].0, controls[i].1.clone()),
                    "drill pipeline: prime {i} diverges from batch CLI"
                );
            }
            other => panic!("drill pipeline: prime {i}: {other:?}"),
        }
    }

    // Every connection exists before any frame is sent: the daemon
    // really is holding `connections` sockets at once.
    let threads = concurrency.clamp(1, connections);
    let conns_per_thread = connections.div_ceil(threads);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
    let programs = std::sync::Arc::new(programs);
    let controls = std::sync::Arc::new(controls);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let barrier = barrier.clone();
            let programs = programs.clone();
            let controls = controls.clone();
            let lo = t * conns_per_thread;
            let hi = ((t + 1) * conns_per_thread).min(connections);
            std::thread::spawn(move || {
                let mut clients: Vec<Client> = (lo..hi)
                    .map(|_| Client::connect_retrying(addr, retry).expect("connect drill"))
                    .collect();
                barrier.wait(); // all sockets open fleet-wide
                let mut expected: Vec<(usize, usize)> = Vec::new(); // (conn, program)
                for (ci, client) in clients.iter_mut().enumerate() {
                    let conn = lo + ci;
                    for j in 0..per_conn {
                        let program = (conn + j) % programs.len();
                        let mut request = wire::Request::new(&programs[program]);
                        request.id = format!("c{conn}-{j}");
                        client
                            .send_frame(&request.to_json_versioned(wire::WireVersion::V2))
                            .expect("pipeline send");
                        expected.push((ci, program));
                    }
                }
                // Read every completion back; ids tell us which
                // program each response answers, order does not matter.
                let mut failures: Vec<String> = Vec::new();
                let mut served = 0usize;
                for (ci, client) in clients.iter_mut().enumerate() {
                    let conn = lo + ci;
                    let mut seen: HashMap<String, usize> = (0..per_conn)
                        .map(|j| (format!("c{conn}-{j}"), (conn + j) % programs.len()))
                        .collect();
                    for _ in 0..per_conn {
                        match client.read_response() {
                            Ok(wire::Response::Ok {
                                id,
                                cache_hit,
                                warm,
                                exit,
                                render,
                                ..
                            }) => {
                                let Some(program) = seen.remove(&id) else {
                                    failures.push(format!("{id}: duplicate or foreign id"));
                                    continue;
                                };
                                if !cache_hit || !warm {
                                    failures.push(format!(
                                        "{id}: expected a warm cache hit (hit={cache_hit}, warm={warm})"
                                    ));
                                }
                                if (exit, strip_timing(&render))
                                    != (controls[program].0, controls[program].1.clone())
                                {
                                    failures.push(format!("{id}: verdict diverges from batch CLI"));
                                }
                                served += 1;
                            }
                            Ok(other) => failures.push(format!("{other:?}")),
                            Err(e) => {
                                failures.push(format!("c{conn}: {e}"));
                                break;
                            }
                        }
                    }
                }
                (served, failures)
            })
        })
        .collect();

    let mut served = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for h in handles {
        let (s, f) = h.join().expect("drill thread");
        served += s;
        failures.extend(f);
    }
    let elapsed = t0.elapsed();
    let stats = server.shutdown();

    for f in failures.iter().take(8) {
        eprintln!("drill pipeline: {f}");
    }
    assert!(
        failures.is_empty(),
        "drill pipeline: {} failure(s)",
        failures.len()
    );
    assert_eq!(served, total, "drill pipeline: lost responses");
    assert_eq!(
        stats.overloaded, 0,
        "drill pipeline: warm burst must not shed: {stats}"
    );
    assert_eq!(
        stats.requests,
        (total + distinct) as u64,
        "drill pipeline: server accounting"
    );
    assert!(
        stats.cache.hits >= total as u64,
        "drill pipeline: every pipelined check must hit the cache: {stats}"
    );
    println!(
        "drill pipeline: OK ({connections} concurrent connection(s), {total} pipelined \
         warm request(s), 0 failed, 0 shed, all byte-identical to batch CLI; \
         {:.0} req/s wall-clock advisory)",
        total as f64 / elapsed.as_secs_f64()
    );
}

/// One leaf of the `--drill edit` dispatcher. `version < 100` is the
/// pristine body; an edit bumps the version past 100 *and* appends a
/// statement, so the function's edge count changes too — every other
/// cluster's reused slice still has to resolve its per-function edge
/// ids against the new program. The appended statement keeps a
/// constant right-hand side on purpose: an arithmetic RHS (`a + 0`)
/// taints the variable *wild* in the Andersen pass, which flips the
/// whole-program alias fingerprint and soundly invalidates every
/// cluster — a real effect, but not the one this drill measures.
/// Every fifth leaf harbors a reachable bug so the reused-verdict mix
/// covers both `SAFE` and `BUG` renders.
fn edit_leaf(i: usize, version: u64) -> String {
    let extra = if version >= 100 {
        format!("a = {version}; ")
    } else {
        String::new()
    };
    if i.is_multiple_of(5) {
        format!("fn f{i}() {{ local a; a = {version}; {extra}if (a == {version}) {{ error(); }} }}")
    } else {
        format!("fn f{i}() {{ local a; a = {version}; {extra}if (a < 0) {{ error(); }} }}")
    }
}

/// Byte-parity modulo *effort* for the edit drill: the wall column is
/// real elapsed time and the refinement count is CEGAR effort —
/// predicate seeding exists precisely to lower it for re-checked
/// clusters — so a verdict line keeps its name, site count, and
/// verdict class and drops the rest. Witness slice lines (and any
/// other line) are kept verbatim: a reused `BUG` verdict's slice must
/// resolve to exactly the cold check's operations.
fn strip_effort(s: &str) -> Vec<String> {
    s.lines()
        .map(|l| match l.find(" site(s)") {
            Some(p) => {
                let end = (p + " site(s)  ".len() + 18).min(l.len());
                l[..end].trim_end().to_owned()
            }
            None => l.to_owned(),
        })
        .collect()
}

/// The `--drill edit` program: `n` leaves behind an `else`-nested
/// dispatcher. The nesting matters — a *sequential* `if` chain would
/// put every earlier call on the path to every later one, so each
/// cluster's control-closed dependency set would swallow all earlier
/// leaves and a single edit would invalidate everything. Nested `else`
/// keeps each leaf's dependency set at exactly `{main, f_i}`.
fn edit_program(versions: &[u64]) -> String {
    let n = versions.len();
    let mut src = String::from("global s;\n");
    for (i, &v) in versions.iter().enumerate() {
        src.push_str(&edit_leaf(i, v));
        src.push('\n');
    }
    src.push_str("fn main() { s = nondet(); ");
    for i in 0..n {
        src.push_str(&format!("if (s == {i}) {{ f{i}(); }} else {{ "));
    }
    src.push_str("s = 0; ");
    for _ in 0..n {
        src.push_str("} ");
    }
    src.push_str("}\n");
    src
}

/// `--drill edit`: the interactive-editing drill for the incremental
/// derivation graph.
///
/// Phase 1 checks an `n`-function dispatcher cold on a journaled
/// daemon. Phase 2 slides a single-function edit across the program:
/// each request differs from its predecessor in exactly one function
/// body, so the daemon's skeleton index must route it through
/// `Session::update` and the certificate gate must re-admit every
/// untouched cluster's stored verdict. Gates, per edit: exactly one
/// cluster invalidated, `incr.verdict_reused` rises by the unchanged
/// cluster count, `incr.fn_hits` rises by the unedited function count,
/// and the render is byte-identical (modulo the wall column) to a cold
/// batch check of the same edited source. Across the phase, warm
/// daemon latency must total strictly less than the cold batch walls —
/// the reuse has to be visible in wall-clock, not just counters.
/// Phase 3 is the chaos pass: a fresh daemon with every `IncrReuse`
/// candidate's certificate corrupted in flight must reject them all
/// (`incr.cert_rejected` > 0, `incr.verdict_reused` == 0), fall back
/// to cold re-checks, and still serve the correct verdicts.
fn drill_edit(
    seed: u64,
    functions: usize,
    edits: usize,
    server_jobs: usize,
    retry: u32,
    json: bool,
    scale: workloads::Scale,
) {
    let n = functions.clamp(20, 64);
    let edits = edits.clamp(2, n);
    let mut versions: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();

    // Ground truth for one source: the batch `Session::compile` →
    // `check` → `render_verdicts` pipeline (no store, no gate, no
    // seeds), timed — the cold wall the warm path must beat.
    let control = |src: &str| -> (i32, Vec<String>, Duration) {
        let t = Instant::now();
        let session =
            blastlite::Session::compile(src, "editdrill.imp").expect("drill program compiles");
        let report = session.check(
            blastlite::CheckerConfig {
                reducer: blastlite::Reducer::path_slice(),
                ..blastlite::CheckerConfig::default()
            },
            &blastlite::DriverConfig::sequential(),
        );
        let wall = t.elapsed();
        let reports = report.into_cluster_reports();
        let (render, exit) = blastlite::render_verdicts(session.program(), &reports);
        (exit, strip_effort(&render), wall)
    };

    let journal_root = flag("--journal").map(PathBuf::from).unwrap_or_else(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos());
        std::env::temp_dir().join(format!(
            "pathslice-editdrill-{}-{nanos}",
            std::process::id()
        ))
    });

    // Phase 1: cold check of the pristine program on a journaled daemon.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: server_jobs,
        journal_dir: Some(journal_root.join("main")),
        ..ServerConfig::default()
    })
    .expect("bind edit-drill server");
    let addr = server.local_addr();
    eprintln!("drill edit: {n} function(s), {edits} sliding edit(s) on {addr}");
    let mut client = Client::connect_retrying(addr, retry).expect("connect edit drill");
    let send = |client: &mut Client, src: &str, id: String| -> (i32, Vec<String>, Duration) {
        let mut request = wire::Request::new(src);
        request.id = id;
        let sent_at = Instant::now();
        match client.request(&request) {
            Ok(wire::Response::Ok { exit, render, .. }) => {
                (exit, strip_effort(&render), sent_at.elapsed())
            }
            Ok(other) => panic!("drill edit `{}`: unexpected response {other:?}", request.id),
            Err(e) => panic!("drill edit `{}`: {e}", request.id),
        }
    };
    let base_src = edit_program(&versions);
    let (base_exit, base_render, _) = send(&mut client, &base_src, "edit-base".into());
    let (ctl_exit, ctl_render, _) = control(&base_src);
    assert_eq!(
        (base_exit, &base_render),
        (ctl_exit, &ctl_render),
        "drill edit: cold base check diverges from batch CLI"
    );
    let base_stats = server.stats().incr;
    assert_eq!(
        base_stats.verdict_reused, 0,
        "drill edit: a cold daemon has nothing to reuse"
    );

    // Phase 2: slide a single-function edit across the program. Every
    // request is one function body away from its predecessor.
    let mut warm_lat: Vec<Duration> = Vec::new();
    let mut cold_walls: Vec<Duration> = Vec::new();
    let mut prev = server.stats().incr;
    for e in 0..edits {
        versions[e] += 100;
        let src = edit_program(&versions);
        let (exit, render, latency) = send(&mut client, &src, format!("edit-{e}"));
        let (ctl_exit, ctl_render, ctl_wall) = control(&src);
        assert_eq!(
            (exit, &render),
            (ctl_exit, &ctl_render),
            "drill edit: edit {e} warm verdicts diverge from a cold batch check"
        );
        let now = server.stats().incr;
        assert_eq!(
            now.invalidated_clusters - prev.invalidated_clusters,
            1,
            "drill edit: edit {e} touched one function, must invalidate exactly one cluster"
        );
        assert_eq!(
            now.verdict_reused - prev.verdict_reused,
            (n - 1) as u64,
            "drill edit: edit {e} must reuse every untouched cluster's verdict"
        );
        assert_eq!(
            now.fn_hits - prev.fn_hits,
            n as u64, // n + 1 functions, 1 edited
            "drill edit: edit {e} must key-match every unedited function"
        );
        assert_eq!(
            now.cert_rejected, 0,
            "drill edit: no intact certificate may fail the reuse gate"
        );
        prev = now;
        warm_lat.push(latency);
        cold_walls.push(ctl_wall);
        eprintln!(
            "drill edit: edit {e} (f{e}) — {} reused / 1 re-checked, warm {:?} vs cold {:?}",
            n - 1,
            latency,
            ctl_wall
        );
    }
    drop(client);
    let stats = server.shutdown();
    let warm_total: Duration = warm_lat.iter().sum();
    let cold_total: Duration = cold_walls.iter().sum();
    assert!(
        warm_total < cold_total,
        "drill edit: warm re-checks ({warm_total:?}) must beat cold batch walls ({cold_total:?})"
    );
    assert_eq!(
        stats.incr.verdict_reused,
        (edits * (n - 1)) as u64,
        "drill edit: total reuse accounting"
    );

    // Phase 3: chaos. Every reuse candidate's certificate is corrupted
    // at the IncrReuse site; the gate must reject each one and the
    // daemon must fall back to cold re-checks — warmth lost, verdicts
    // intact.
    let plan = rt::FaultPlan::new(seed ^ 0xED17).inject(
        rt::FaultSite::IncrReuse,
        rt::FaultKind::CorruptCertificate,
        1.0,
    );
    let chaos = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: server_jobs,
        journal_dir: Some(journal_root.join("chaos")),
        faults: plan,
        ..ServerConfig::default()
    })
    .expect("bind chaos server");
    let mut client = Client::connect_retrying(chaos.local_addr(), retry).expect("connect chaos");
    send(&mut client, &base_src, "chaos-base".into());
    // One single-function edit against the *pristine* program (the
    // phase-2 `versions` have drifted `edits` functions away from it).
    let mut chaos_versions: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
    chaos_versions[0] += 100;
    let chaos_src = edit_program(&chaos_versions);
    let (exit, render, _) = send(&mut client, &chaos_src, "chaos-edit".into());
    let (ctl_exit, ctl_render, _) = control(&chaos_src);
    assert_eq!(
        (exit, &render),
        (ctl_exit, &ctl_render),
        "drill edit: chaos verdicts must still match a cold batch check"
    );
    drop(client);
    let chaos_stats = chaos.shutdown();
    assert_eq!(
        chaos_stats.incr.verdict_reused, 0,
        "drill edit: a corrupted certificate must never be reused"
    );
    assert_eq!(
        chaos_stats.incr.cert_rejected,
        (n - 1) as u64,
        "drill edit: every corrupted candidate must be rejected at the gate"
    );

    if json {
        let mut rep = bench::BenchReport::new("incr", bench::scale_name(scale));
        rep.config("functions", Json::Num(n as i64));
        rep.config("edits", Json::Num(edits as i64));
        rep.config("seed", Json::Num(seed as i64));
        rep.config("server_jobs", Json::Num(server_jobs as i64));
        for (name, lats, extra) in [
            (
                "warm",
                warm_lat.clone(),
                vec![
                    ("fn_hits".to_owned(), stats.incr.fn_hits as i64),
                    ("cfa_reused".to_owned(), stats.incr.cfa_reused as i64),
                    (
                        "fixpoint_reused".to_owned(),
                        stats.incr.fixpoint_reused as i64,
                    ),
                    (
                        "invalidated_clusters".to_owned(),
                        stats.incr.invalidated_clusters as i64,
                    ),
                    (
                        "verdict_reused".to_owned(),
                        stats.incr.verdict_reused as i64,
                    ),
                    (
                        "chaos_cert_rejected".to_owned(),
                        chaos_stats.incr.cert_rejected as i64,
                    ),
                ],
            ),
            ("cold", cold_walls.clone(), Vec::new()),
        ] {
            let mut sorted = lats;
            sorted.sort();
            let total: Duration = sorted.iter().sum();
            let hist = obs::Histogram::new();
            for d in &sorted {
                hist.record(d.as_micros() as u64);
            }
            let snap = hist.snapshot();
            let mut fields = vec![
                ("requests".to_owned(), sorted.len() as i64),
                (
                    "hist_p50_us".to_owned(),
                    snap.quantile_interpolated(0.50) as i64,
                ),
                (
                    "hist_p95_us".to_owned(),
                    snap.quantile_interpolated(0.95) as i64,
                ),
            ];
            fields.extend(extra);
            rep.rows.push(bench::Row {
                name: name.into(),
                variant: "default".into(),
                fields,
                times_s: vec![
                    ("p50".into(), percentile(&sorted, 0.50).as_secs_f64()),
                    ("p95".into(), percentile(&sorted, 0.95).as_secs_f64()),
                    ("total".into(), total.as_secs_f64()),
                ],
                hists: vec![("latency_us".into(), snap)],
                ..bench::Row::default()
            });
        }
        bench::finish_json_report(rep);
    }

    println!(
        "drill edit: OK ({edits} single-function edit(s) over {n} function(s), \
         {} verdict(s) reused, {} invalidated, warm {warm_total:?} vs cold {cold_total:?}; \
         chaos pass rejected {} corrupted certificate(s), verdicts intact)",
        stats.incr.verdict_reused, stats.incr.invalidated_clusters, chaos_stats.incr.cert_rejected,
    );
}

/// Knobs for the `--fabric` drill, straight from the command line.
struct FabricDrill {
    nodes: usize,
    seed: u64,
    requests: usize,
    concurrency: usize,
    repeat_ratio: f64,
    server_jobs: usize,
    retry: u32,
    json: bool,
    scale: workloads::Scale,
}

/// `--fabric <n>`: the multi-node failover drill.
///
/// Phase 1 is the single-node control: every program checked cold on a
/// plain daemon, verdicts recorded. Phase 2 stands up `n` journaled,
/// peer-enrolled daemons behind a router and replays a repeat-heavy
/// schedule through it from `concurrency` client threads; at the
/// half-way barrier the ring owner of the hottest program is crashed
/// (`SIGKILL` shape — no drain, no flush) and the load continues.
/// Every response must be `ok` and byte-identical to the control, the
/// router must record the failover, and no surviving node may have
/// accepted an unvalidated peer verdict. Phase 3 re-runs a fleet with
/// every peer-fetched certificate corrupted in flight: the gate must
/// reject every fetch (`fabric.peer_rejected` > 0) and each rejected
/// key must re-check locally to the control verdict.
fn drill_fabric(opts: FabricDrill) {
    use fabric::{Router, RouterConfig};
    use rt::ring::Ring;

    let FabricDrill {
        nodes,
        seed,
        requests,
        concurrency,
        repeat_ratio,
        server_jobs,
        retry,
        json,
        scale,
    } = opts;

    let nodes = nodes.clamp(2, 8);
    let k = requests.clamp(4, 64);
    let distinct = (k / 2).max(2);
    let programs: Vec<String> = (0..distinct as u64)
        .map(|i| generate(&spec(seed + i)).source)
        .collect();

    // Repeat-heavy schedule over the distinct programs, deterministic
    // in --seed. Program 0 is forced hottest (first and most repeated)
    // so "crash the owner of the hottest key" always kills a node that
    // actually holds warm state.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFAB);
    let schedule: Vec<usize> = (0..k)
        .map(|i| {
            if i == 0 || rng.gen_bool(repeat_ratio) {
                0
            } else {
                rng.gen_range(0..distinct)
            }
        })
        .collect();

    let check = |client: &mut Client, program: usize, id: String| -> (i32, Vec<String>) {
        let mut request = wire::Request::new(&programs[program]);
        request.id = id;
        match client.request(&request) {
            Ok(wire::Response::Ok { exit, render, .. }) => (exit, strip_timing(&render)),
            Ok(other) => panic!(
                "fabric drill `{}`: unexpected response {other:?}",
                request.id
            ),
            Err(e) => panic!("fabric drill `{}`: {e}", request.id),
        }
    };

    // Phase 1: single-node control. Ground truth for every program.
    let control_server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: server_jobs,
        ..ServerConfig::default()
    })
    .expect("bind control server");
    let mut control_client =
        Client::connect_retrying(control_server.local_addr(), retry).expect("connect control");
    let t0 = Instant::now();
    let control: Vec<(i32, Vec<String>)> = (0..distinct)
        .map(|p| check(&mut control_client, p, format!("control-{p}")))
        .collect();
    let control_elapsed = t0.elapsed();
    drop(control_client);
    control_server.shutdown();

    // Phase 2: the fleet — n journaled members, peer-enrolled, router
    // in front.
    let journal_root = {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos());
        std::env::temp_dir().join(format!("pathslice-fabric-{}-{nanos}", std::process::id()))
    };
    let start_member = |i: usize, faults: rt::FaultPlan| -> Server {
        Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            jobs: server_jobs,
            journal_dir: Some(journal_root.join(format!("n{i}"))),
            faults,
            ..ServerConfig::default()
        })
        .expect("bind fabric member")
    };
    let mut servers: Vec<Option<Server>> = (0..nodes)
        .map(|i| Some(start_member(i, rt::FaultPlan::default())))
        .collect();
    let members: Vec<(String, String)> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                format!("n{i}"),
                s.as_ref().unwrap().local_addr().to_string(),
            )
        })
        .collect();
    for (i, s) in servers.iter().enumerate() {
        s.as_ref().unwrap().set_peers(&format!("n{i}"), &members);
    }
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        members: members.clone(),
        health_every: Duration::from_millis(100),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let router_addr = router.local_addr();

    let hot_key = blastlite::Session::content_key(&programs[0], "<drill>").expect("parses");
    let victim = Ring::new(members.iter().cloned())
        .owner(hot_key)
        .expect("all up")
        .name
        .clone();
    let victim_idx: usize = victim[1..].parse().unwrap();
    eprintln!(
        "fabric drill: {nodes} member(s) behind {router_addr}; \
         mid-drain victim is {victim} (owner of the hottest key)"
    );

    // Clients drain their schedule shares to the half-way barrier; the
    // main thread crashes the victim there; clients drain the rest.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(concurrency + 1));
    let programs_arc = std::sync::Arc::new(programs.clone());
    let t1 = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|c| {
            let mine: Vec<(usize, usize)> = schedule
                .iter()
                .enumerate()
                .filter(|(i, _)| i % concurrency == c)
                .map(|(i, &p)| (i, p))
                .collect();
            let barrier = barrier.clone();
            let programs = programs_arc.clone();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_retrying(router_addr, retry).expect("connect router");
                let mut results: Vec<(usize, usize, i32, Vec<String>, Duration)> = Vec::new();
                let mut failures: Vec<String> = Vec::new();
                let half = mine.len() / 2;
                for (phase, slice) in [(0, &mine[..half]), (1, &mine[half..])] {
                    if phase == 1 {
                        barrier.wait();
                        barrier.wait(); // crash happens between the two
                    }
                    for &(i, p) in slice {
                        let mut request = wire::Request::new(&programs[p]);
                        request.id = format!("fab-{i}");
                        let sent_at = Instant::now();
                        match client.request(&request) {
                            Ok(wire::Response::Ok { exit, render, .. }) => {
                                results.push((
                                    i,
                                    p,
                                    exit,
                                    strip_timing(&render),
                                    sent_at.elapsed(),
                                ));
                            }
                            Ok(other) => failures.push(format!("fab-{i}: {other:?}")),
                            Err(e) => failures.push(format!("fab-{i}: {e}")),
                        }
                    }
                }
                (results, failures)
            })
        })
        .collect();

    barrier.wait(); // every client is parked at the half-way line
    let crashed = servers[victim_idx].take().unwrap().crash();
    eprintln!(
        "fabric drill: crashed {victim} mid-drain after {} request(s) on it",
        crashed.requests
    );
    std::thread::sleep(Duration::from_millis(150));
    barrier.wait(); // release the second half of the load

    let mut results: Vec<(usize, usize, i32, Vec<String>, Duration)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for h in handles {
        let (r, f) = h.join().expect("client thread");
        results.extend(r);
        failures.extend(f);
    }
    let fabric_elapsed = t1.elapsed();

    assert!(
        failures.is_empty(),
        "fabric drill: {} request(s) failed after retry: {failures:?}",
        failures.len()
    );
    assert_eq!(results.len(), k, "fabric drill: lost responses");
    let mut wrong = 0usize;
    for (i, p, exit, render, _) in &results {
        if (*exit, render) != (control[*p].0, &control[*p].1) {
            eprintln!("fabric drill: request {i} (program {p}) diverged from control");
            wrong += 1;
        }
    }
    assert_eq!(wrong, 0, "fabric drill: {wrong} wrong verdict(s) served");

    let router_stats = router.shutdown();
    assert!(
        router_stats.failovers + router_stats.down_marks > 0,
        "fabric drill: the crash must be visible to the router: {router_stats}"
    );
    assert_eq!(
        router_stats.shed, 0,
        "fabric drill: no request may be shed: {router_stats}"
    );
    let mut peer_accepted = 0;
    let mut peer_rejected = 0;
    let survivor_stats: Vec<server::ServerStats> = servers
        .iter_mut()
        .filter_map(Option::take)
        .map(Server::shutdown)
        .collect();
    for s in &survivor_stats {
        peer_accepted += s.peer_accepted;
        peer_rejected += s.peer_rejected;
    }
    assert_eq!(
        peer_rejected, 0,
        "fabric drill: no healthy peer certificate may fail re-validation"
    );

    // Phase 3: corrupt-peer chaos. Every fetched certificate is damaged
    // in flight; the gate must reject each one and re-check locally.
    let plan = rt::FaultPlan::new(seed ^ 0xC0DE).inject(
        rt::FaultSite::PeerFetch,
        rt::FaultKind::CorruptCertificate,
        1.0,
    );
    let chaos_root = journal_root.join("chaos");
    let chaos: Vec<Server> = (0..3)
        .map(|i| {
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                jobs: server_jobs,
                journal_dir: Some(chaos_root.join(format!("c{i}"))),
                faults: plan.clone(),
                ..ServerConfig::default()
            })
            .expect("bind chaos member")
        })
        .collect();
    let chaos_members: Vec<(String, String)> = chaos
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("c{i}"), s.local_addr().to_string()))
        .collect();
    for (i, s) in chaos.iter().enumerate() {
        s.set_peers(&format!("c{i}"), &chaos_members);
    }
    let owner = Ring::new(chaos_members.iter().cloned())
        .owner(hot_key)
        .expect("all up")
        .name
        .clone();
    let owner_idx: usize = owner[1..].parse().unwrap();
    let asker_idx = (owner_idx + 1) % 3;
    let mut to_owner =
        Client::connect_retrying(chaos[owner_idx].local_addr(), retry).expect("connect owner");
    check(&mut to_owner, 0, "chaos-journal".into());
    let mut to_asker =
        Client::connect_retrying(chaos[asker_idx].local_addr(), retry).expect("connect asker");
    let (exit, render) = check(&mut to_asker, 0, "chaos-ask".into());
    assert_eq!(
        (exit, &render),
        (control[0].0, &control[0].1),
        "fabric drill: the rejected key must re-check locally to the control verdict"
    );
    drop(to_owner);
    drop(to_asker);
    let rejected: u64 = chaos.into_iter().map(|s| s.shutdown().peer_rejected).sum();
    assert!(
        rejected > 0,
        "fabric drill: corrupting every fetched certificate must reject at least one"
    );

    if json {
        let mut rep = bench::BenchReport::new("fabric", bench::scale_name(scale));
        rep.config("nodes", Json::Num(nodes as i64));
        rep.config("requests", Json::Num(k as i64));
        rep.config("concurrency", Json::Num(concurrency as i64));
        rep.config("repeat_ratio", Json::Float(repeat_ratio));
        rep.config("seed", Json::Num(seed as i64));
        rep.config("server_jobs", Json::Num(server_jobs as i64));
        for (name, lats, elapsed, extra) in [
            (
                "fabric",
                results.iter().map(|r| r.4).collect::<Vec<_>>(),
                fabric_elapsed,
                vec![
                    ("failovers".to_owned(), router_stats.failovers as i64),
                    ("down_marks".to_owned(), router_stats.down_marks as i64),
                    ("shed".to_owned(), router_stats.shed as i64),
                    ("peer_accepted".to_owned(), peer_accepted as i64),
                    ("peer_rejected".to_owned(), peer_rejected as i64),
                    ("chaos_peer_rejected".to_owned(), rejected as i64),
                ],
            ),
            ("control", Vec::new(), control_elapsed, Vec::new()),
        ] {
            let mut sorted = lats.clone();
            sorted.sort();
            let hist = obs::Histogram::new();
            for d in &sorted {
                hist.record(d.as_micros() as u64);
            }
            let snap = hist.snapshot();
            let mut fields = vec![
                ("requests".to_owned(), sorted.len() as i64),
                (
                    "hist_p50_us".to_owned(),
                    snap.quantile_interpolated(0.50) as i64,
                ),
                (
                    "hist_p95_us".to_owned(),
                    snap.quantile_interpolated(0.95) as i64,
                ),
                (
                    "hist_p99_us".to_owned(),
                    snap.quantile_interpolated(0.99) as i64,
                ),
            ];
            fields.extend(extra);
            rep.rows.push(bench::Row {
                name: name.into(),
                variant: "default".into(),
                fields,
                times_s: vec![
                    ("p50".into(), percentile(&sorted, 0.50).as_secs_f64()),
                    ("p95".into(), percentile(&sorted, 0.95).as_secs_f64()),
                    ("total".into(), elapsed.as_secs_f64()),
                ],
                hists: vec![("latency_us".into(), snap)],
                ..bench::Row::default()
            });
        }
        bench::finish_json_report(rep);
    }

    println!(
        "fabric drill: OK ({k} request(s) over {nodes} node(s), {victim} crashed mid-drain, \
         {} failover(s), 0 shed, 0 wrong verdict(s); corrupt-peer pass rejected {rejected} \
         fetch(es), all re-checked locally)",
        router_stats.failovers + router_stats.down_marks,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = bench::json_requested();
    if json {
        obs::set_enabled(true);
    }
    let scale = bench::scale_from_args();
    let requests: usize = if smoke {
        3
    } else {
        parse_flag("--requests", 40)
    };
    let concurrency: usize = if smoke {
        1
    } else {
        parse_flag("--concurrency", 4).max(1)
    };
    let repeat_ratio: f64 = parse_flag("--repeat-ratio", 0.5);
    let rate: f64 = parse_flag("--rate", 0.0);
    let seed: u64 = parse_flag("--seed", 7);
    let server_jobs: usize = parse_flag("--server-jobs", 4);
    let pipeline: usize = if smoke {
        1
    } else {
        parse_flag("--pipeline", 1).max(1)
    };
    let retry: u32 = if std::env::args().any(|a| a == "--no-retry") {
        0
    } else {
        3
    };

    if let Some(n) = flag("--fabric") {
        let nodes: usize = n.parse().unwrap_or_else(|_| {
            eprintln!("bad --fabric value `{n}`");
            std::process::exit(64);
        });
        drill_fabric(FabricDrill {
            nodes,
            seed,
            requests: parse_flag("--requests", 24),
            concurrency,
            repeat_ratio,
            server_jobs,
            retry,
            json,
            scale,
        });
        return;
    }

    if let Some(drill) = flag("--drill") {
        match drill.as_str() {
            "restart" => {
                drill_restart(seed, parse_flag("--requests", 8), server_jobs, retry);
                return;
            }
            "pipeline" => {
                drill_pipeline(
                    seed,
                    parse_flag("--connections", 1024),
                    parse_flag("--requests", 4096),
                    parse_flag("--concurrency", 8),
                    server_jobs,
                    retry,
                );
                return;
            }
            "edit" => {
                drill_edit(
                    seed,
                    parse_flag("--functions", 24),
                    parse_flag("--edits", 6),
                    server_jobs,
                    retry,
                    json,
                    scale,
                );
                return;
            }
            other => {
                eprintln!("unknown --drill `{other}` (expected `restart`, `pipeline`, or `edit`)");
                std::process::exit(64);
            }
        }
    }

    let attach: Option<SocketAddr> = flag("--attach").map(|a| {
        a.parse().unwrap_or_else(|_| {
            eprintln!("bad --attach value `{a}`");
            std::process::exit(64);
        })
    });
    if smoke && attach.is_some() {
        eprintln!("--smoke asserts in-process daemon accounting; drop --attach");
        std::process::exit(64);
    }

    let threads_before = os_threads();
    let server = if attach.is_some() {
        None
    } else {
        Some(
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                jobs: server_jobs,
                journal_dir: flag("--journal").map(PathBuf::from),
                ..ServerConfig::default()
            })
            .expect("bind bench server"),
        )
    };
    let addr = attach.unwrap_or_else(|| server.as_ref().expect("in-process server").local_addr());
    eprintln!(
        "serve_bench: daemon on {addr}, {requests} request(s), {concurrency} connection(s), \
         repeat-ratio {repeat_ratio}"
    );

    // The request schedule, decided up front and deterministic in
    // --seed: each entry is the generating seed of the program to send.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sent: Vec<u64> = Vec::new();
    let mut schedule: Vec<u64> = Vec::new();
    for i in 0..requests {
        if smoke {
            // 3-request CI shape: two distinct programs, then repeat
            // the first — a guaranteed cache hit.
            schedule.push([seed, seed + 1, seed][i % 3]);
            continue;
        }
        if !sent.is_empty() && rng.gen_bool(repeat_ratio) {
            let idx: usize = rng.gen_range(0..sent.len());
            schedule.push(sent[idx]);
        } else {
            let fresh = seed + schedule.len() as u64;
            sent.push(fresh);
            schedule.push(fresh);
        }
    }

    // Fan the schedule out round-robin over the connection fleet.
    let t0 = Instant::now();
    let interval = if rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / rate))
    } else {
        None
    };
    let handles: Vec<_> = (0..concurrency)
        .map(|c| {
            let mine: Vec<(usize, u64)> = schedule
                .iter()
                .enumerate()
                .filter(|(i, _)| i % concurrency == c)
                .map(|(i, &s)| (i, s))
                .collect();
            std::thread::spawn(move || {
                if pipeline > 1 {
                    // v2 pipelined: a sliding window of `pipeline`
                    // requests in flight per connection.
                    return pipelined_connection(addr, retry, pipeline, mine, t0, interval);
                }
                let mut client = Client::connect_retrying(addr, retry).expect("connect");
                let mut samples: Vec<Sample> = Vec::new();
                let mut failures: Vec<String> = Vec::new();
                for (i, program_seed) in mine {
                    if let Some(interval) = interval {
                        // Open-loop: request i is *due* at t0 + i·Δ; if
                        // we are behind, send immediately (burst).
                        let due = t0 + interval * i as u32;
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                    }
                    let mut request = wire::Request::new(&generate(&spec(program_seed)).source);
                    request.id = format!("r{i}");
                    let sent_at = Instant::now();
                    match client.request(&request) {
                        Ok(wire::Response::Ok { cache_hit, .. }) => samples.push(Sample {
                            latency: sent_at.elapsed(),
                            cache_hit,
                        }),
                        Ok(other) => failures.push(format!("r{i}: {other:?}")),
                        Err(e) => failures.push(format!("r{i}: {e}")),
                    }
                }
                (samples, failures)
            })
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for h in handles {
        let (s, f) = h.join().expect("client thread");
        samples.extend(s);
        failures.extend(f);
    }
    let total = t0.elapsed();
    if let Some(path) = flag("--metrics-out") {
        // Through the wire, not Server::metrics_exposition(): the bench
        // should exercise the same path an operator's scraper would.
        let mut scraper = Client::connect_retrying(addr, retry).expect("connect for metrics");
        match scraper.metrics("serve-bench-final") {
            Ok((exposition, _series)) => match std::fs::write(&path, exposition) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("cannot write {path}: {e}"),
            },
            Err(e) => eprintln!("metrics request failed: {e}"),
        }
    }
    // Attached daemons outlive the bench; their accounting reads zero.
    let stats = server.map(Server::shutdown).unwrap_or_default();

    for f in &failures {
        eprintln!("request failed: {f}");
    }

    let split = |keep: Option<bool>| -> Vec<Duration> {
        let mut v: Vec<Duration> = samples
            .iter()
            .filter(|s| keep.is_none_or(|k| s.cache_hit == k))
            .map(|s| s.latency)
            .collect();
        v.sort();
        v
    };
    let (all, cached, cold) = (split(None), split(Some(true)), split(Some(false)));
    let throughput = samples.len() as f64 / total.as_secs_f64();

    println!("# serve_bench — daemon latency under load (scale: {scale:?})");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>12}",
        "class", "n", "p50(ms)", "p95(ms)", "p99(ms)"
    );
    for (name, lat) in [("all", &all), ("cached", &cached), ("cold", &cold)] {
        println!(
            "{:<8} {:>6} {:>12.3} {:>12.3} {:>12.3}",
            name,
            lat.len(),
            percentile(lat, 0.50).as_secs_f64() * 1000.0,
            percentile(lat, 0.95).as_secs_f64() * 1000.0,
            percentile(lat, 0.99).as_secs_f64() * 1000.0,
        );
    }
    println!(
        "throughput: {throughput:.1} req/s over {:.2} s | server: {stats}",
        total.as_secs_f64()
    );

    if json {
        let mut rep = bench::BenchReport::new("serve", bench::scale_name(scale));
        rep.config("requests", Json::Num(requests as i64));
        rep.config("concurrency", Json::Num(concurrency as i64));
        rep.config("repeat_ratio", Json::Float(repeat_ratio));
        rep.config("rate", Json::Float(rate));
        rep.config("seed", Json::Num(seed as i64));
        rep.config("server_jobs", Json::Num(server_jobs as i64));
        rep.config("pipeline", Json::Num(pipeline as i64));
        for (name, lat) in [("all", &all), ("cached", &cached), ("cold", &cold)] {
            // The full distribution, log₂-bucketed: sort-based
            // percentiles above give exact points for the table, the
            // histogram snapshot round-trips through the report so
            // `bench diff` can compare tails bucket-for-bucket.
            let hist = obs::Histogram::new();
            for d in lat.iter() {
                hist.record(d.as_micros() as u64);
            }
            let snap = hist.snapshot();
            rep.rows.push(bench::Row {
                name: name.into(),
                variant: "default".into(),
                fields: vec![
                    ("requests".into(), lat.len() as i64),
                    ("failures".into(), failures.len() as i64),
                    ("cache_hits".into(), stats.cache.hits as i64),
                    ("cache_misses".into(), stats.cache.misses as i64),
                    ("cache_evictions".into(), stats.cache.evictions as i64),
                    ("overloaded".into(), stats.overloaded as i64),
                    ("throughput_rps".into(), throughput.round() as i64),
                    (
                        "hist_p50_us".into(),
                        snap.quantile_interpolated(0.50) as i64,
                    ),
                    (
                        "hist_p95_us".into(),
                        snap.quantile_interpolated(0.95) as i64,
                    ),
                    (
                        "hist_p99_us".into(),
                        snap.quantile_interpolated(0.99) as i64,
                    ),
                ],
                times_s: vec![
                    ("p50".into(), percentile(lat, 0.50).as_secs_f64()),
                    ("p95".into(), percentile(lat, 0.95).as_secs_f64()),
                    ("p99".into(), percentile(lat, 0.99).as_secs_f64()),
                    ("total".into(), total.as_secs_f64()),
                ],
                hists: vec![("latency_us".into(), snap)],
                ..bench::Row::default()
            });
        }
        bench::finish_json_report(rep);
    }
    bench::flush_trace_out();

    if smoke {
        // CI gate: every request answered, the repeat hit the cache,
        // the drain was clean, and no thread leaked.
        assert!(failures.is_empty(), "smoke: failures {failures:?}");
        assert_eq!(samples.len(), 3, "smoke: lost responses");
        assert_eq!(stats.requests, 3, "smoke: server accounting");
        assert!(stats.cache.hits >= 1, "smoke: repeat request must hit");
        assert_eq!(cached.len() as u64, stats.cache.hits, "smoke: hit split");
        if let (Some(before), Some(after)) = (threads_before, os_threads()) {
            assert_eq!(before, after, "smoke: leaked OS threads");
        }
        println!(
            "smoke: OK (3 requests, {} cache hit(s), clean drain)",
            stats.cache.hits
        );
    } else if !failures.is_empty() {
        std::process::exit(1);
    }
}
