//! Load generator for the `pathslice serve` daemon.
//!
//! Starts an in-process [`server::Server`], drives it over real TCP
//! with a fleet of persistent NDJSON connections, and reports latency
//! percentiles split by cache outcome — the experiment behind the
//! analysis cache: repeat submissions of the same (or a reformatted)
//! program must be measurably cheaper than cold ones.
//!
//! Usage:
//!
//! ```text
//! serve_bench [small|medium|full]
//!             [--requests <n>] [--concurrency <c>] [--repeat-ratio <r>]
//!             [--rate <req/s>] [--seed <s>] [--server-jobs <n>]
//!             [--json] [--smoke] [--metrics-out <metrics.prom>]
//!             [--trace-out <spans.json>]
//!             [--journal <dir>] [--attach <host:port>] [--no-retry]
//!             [--drill restart]
//! ```
//!
//! Each request is a distinct generated workload program (seed-varied)
//! with probability `1 - r`, or a re-submission of one already sent with
//! probability `r`. Requests are classified *by the response's*
//! `cache: hit|miss` field, so the split is ground truth from the
//! daemon, not a guess from the schedule. With `--rate`, send times are
//! fixed up front (open-loop: a late response makes the next sends
//! burst, and the queueing shows up as latency); without it, each
//! connection issues back-to-back.
//!
//! `--json` writes `BENCH_serve.json` (`pathslice-bench/v1`): rows
//! `all` / `cached` / `cold` with `p50`/`p95`/`p99`/`total` in
//! `times_s`, plus the full per-verdict latency distribution as an
//! [`obs::Histogram`] snapshot (`hists.latency_us`, with bucket-exact
//! `hist_p50_us`/`hist_p95_us`/`hist_p99_us` columns) so regression
//! diffs can reason about tails, not just three points. `--smoke` is
//! the CI mode: 3 requests on 1 connection (the third repeats the
//! first → must hit the cache), then asserts a clean drain and zero
//! leaked threads. `--metrics-out` fetches the daemon's Prometheus
//! exposition over the wire (`op: "metrics"`) right before the drain
//! and writes it to a file; `--trace-out` dumps the run's span trees.
//!
//! Robustness knobs: `--journal <dir>` attaches the durable verdict
//! journal to the in-process daemon; `--attach <host:port>` drives an
//! externally started daemon instead of spawning one (server-side
//! accounting is then unavailable, so it composes with neither
//! `--smoke` nor `--drill`); `--no-retry` disables the client-side
//! transport retry (default: 3 bounded attempts with backoff).
//! `--drill restart` runs the kill-and-recover drill instead of a load
//! run: journaled daemon → half the programs → `SIGKILL`-equivalent
//! crash (no flush, no compaction) → restart on the same journal →
//! assert the recovery counters and that every recovered verdict is
//! served warm, byte-identical to a cold journal-less control.

use obs::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use server::{wire, Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use workloads::gen::generate;
use workloads::WorkloadSpec;

/// One program per seed: small enough that a check is milliseconds, so
/// the setup pipeline (parse → lower → analyses) the cache elides is a
/// visible fraction of cold latency.
fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("serve-{seed}"),
        seed,
        modules: 2,
        helpers_per_module: 2,
        loop_bound: 20,
        driver_loops: 1,
        wrapper_depth: 1,
        buggy_modules: vec![1],
        multi_site_modules: 1,
    }
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    latency: Duration,
    cache_hit: bool,
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    match flag(name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad {name} value `{v}`");
            std::process::exit(64);
        }),
        None => default,
    }
}

fn os_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Drops the trailing wall-time column (`...  12.3ms`) from each render
/// line: it is real elapsed time, the only part of a verdict that may
/// legitimately differ between a warm replay and a cold re-check.
fn strip_timing(s: &str) -> Vec<String> {
    s.lines()
        .map(|l| {
            l.rsplit_once("  ")
                .map_or(l.to_owned(), |(v, _)| v.to_owned())
        })
        .collect()
}

/// `--drill restart`: the kill-and-recover drill.
///
/// Phase 1 starts a journaled daemon, checks half the programs, and
/// crashes it ([`Server::crash`]: the `SIGKILL` shape — no drain, no
/// journal flush, no compaction). Phase 2 restarts on the same journal
/// directory and asserts the recovery counters: every journaled verdict
/// recovered (each re-validated through its certificate before it may
/// serve), none rejected, no torn tail (the crash landed between
/// appends, and appends are single `write_all`s). It then resends all
/// `k` programs: the first half must come back `warm` — served from the
/// recovered verdict cache without re-running the check — and identical
/// to the pre-crash verdicts; the second half was never journaled and
/// must run cold. Phase 3 is the control: a fresh journal-less daemon
/// checks all `k` programs from scratch, and every phase-2 verdict must
/// match it byte-for-byte (modulo the wall-time column).
fn drill_restart(seed: u64, requests: usize, server_jobs: usize, retry: u32) {
    let k = (requests.clamp(4, 64) + 1) & !1; // even, bounded
    let half = k / 2;
    let journal_dir = flag("--journal").map(PathBuf::from).unwrap_or_else(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos());
        std::env::temp_dir().join(format!("pathslice-drill-{}-{nanos}", std::process::id()))
    });
    let config = || ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: server_jobs,
        journal_dir: Some(journal_dir.clone()),
        ..ServerConfig::default()
    };
    let programs: Vec<String> = (0..k as u64)
        .map(|i| generate(&spec(seed + i)).source)
        .collect();
    let send = |client: &mut Client, i: usize| -> (bool, i32, Vec<String>) {
        let mut request = wire::Request::new(&programs[i]);
        request.id = format!("drill-{i}");
        match client.request(&request) {
            Ok(wire::Response::Ok {
                warm, exit, render, ..
            }) => (warm, exit, strip_timing(&render)),
            Ok(other) => panic!("drill request {i}: unexpected response {other:?}"),
            Err(e) => panic!("drill request {i}: {e}"),
        }
    };

    // Phase 1: journaled daemon, half the programs, then the crash.
    let server = Server::start(config()).expect("bind drill server");
    let addr = server.local_addr();
    eprintln!(
        "drill restart: phase 1 on {addr}, journal {}",
        journal_dir.display()
    );
    let mut client = Client::connect_retrying(addr, retry).expect("connect phase 1");
    let before: Vec<_> = (0..half).map(|i| send(&mut client, i)).collect();
    drop(client);
    let crashed = server.crash();
    assert_eq!(crashed.requests, half as u64, "drill: phase-1 accounting");
    for (i, (warm, ..)) in before.iter().enumerate() {
        assert!(!warm, "drill: phase-1 request {i} cannot be warm");
    }
    // The crash leaks its threads instead of joining them; give them a
    // beat to observe the cancelled token before binding the successor.
    std::thread::sleep(Duration::from_millis(150));

    // Phase 2: restart on the same journal. Replay must recover every
    // appended verdict — and nothing else.
    let server = Server::start(config()).expect("restart drill server");
    let addr = server.local_addr();
    let journal = server.stats().journal.expect("journal stats");
    eprintln!(
        "drill restart: phase 2 on {addr} — {} recovered, {} rejected, {} torn",
        journal.recovered, journal.rejected, journal.torn
    );
    assert_eq!(journal.recovered, half as u64, "drill: recovery count");
    assert_eq!(
        journal.rejected, 0,
        "drill: no verdict may fail re-validation"
    );
    assert_eq!(
        journal.torn, 0,
        "drill: crash between appends tears nothing"
    );
    let mut client = Client::connect_retrying(addr, retry).expect("connect phase 2");
    let after: Vec<_> = (0..k).map(|i| send(&mut client, i)).collect();
    drop(client);
    let stats = server.shutdown();
    for (i, (warm, exit, render)) in after.iter().enumerate() {
        if i < half {
            assert!(
                warm,
                "drill: request {i} must be served warm from the journal"
            );
            assert_eq!(
                (exit, render),
                (&before[i].1, &before[i].2),
                "drill: request {i} warm verdict differs from pre-crash"
            );
        } else {
            assert!(
                !warm,
                "drill: request {i} was never journaled, cannot be warm"
            );
        }
    }
    assert_eq!(
        stats.verdicts.hits, half as u64,
        "drill: warm-hit accounting"
    );

    // Phase 3: the cold control — no journal, every program checked
    // from scratch. Journal-served verdicts must be indistinguishable.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: server_jobs,
        ..ServerConfig::default()
    })
    .expect("bind control server");
    let mut client = Client::connect_retrying(server.local_addr(), retry).expect("connect control");
    let control: Vec<_> = (0..k).map(|i| send(&mut client, i)).collect();
    drop(client);
    server.shutdown();
    for (i, (_, exit, render)) in control.iter().enumerate() {
        assert_eq!(
            (&after[i].1, &after[i].2),
            (exit, render),
            "drill: request {i} journal-served verdict differs from cold control"
        );
    }

    println!(
        "drill restart: OK ({half} verdict(s) recovered and re-validated, \
         {half} warm replay(s) byte-identical to a cold control, journal at {})",
        journal_dir.display()
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = bench::json_requested();
    if json {
        obs::set_enabled(true);
    }
    let scale = bench::scale_from_args();
    let requests: usize = if smoke {
        3
    } else {
        parse_flag("--requests", 40)
    };
    let concurrency: usize = if smoke {
        1
    } else {
        parse_flag("--concurrency", 4).max(1)
    };
    let repeat_ratio: f64 = parse_flag("--repeat-ratio", 0.5);
    let rate: f64 = parse_flag("--rate", 0.0);
    let seed: u64 = parse_flag("--seed", 7);
    let server_jobs: usize = parse_flag("--server-jobs", 4);
    let retry: u32 = if std::env::args().any(|a| a == "--no-retry") {
        0
    } else {
        3
    };

    if let Some(drill) = flag("--drill") {
        match drill.as_str() {
            "restart" => {
                drill_restart(seed, parse_flag("--requests", 8), server_jobs, retry);
                return;
            }
            other => {
                eprintln!("unknown --drill `{other}` (expected `restart`)");
                std::process::exit(64);
            }
        }
    }

    let attach: Option<SocketAddr> = flag("--attach").map(|a| {
        a.parse().unwrap_or_else(|_| {
            eprintln!("bad --attach value `{a}`");
            std::process::exit(64);
        })
    });
    if smoke && attach.is_some() {
        eprintln!("--smoke asserts in-process daemon accounting; drop --attach");
        std::process::exit(64);
    }

    let threads_before = os_threads();
    let server = if attach.is_some() {
        None
    } else {
        Some(
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                jobs: server_jobs,
                journal_dir: flag("--journal").map(PathBuf::from),
                ..ServerConfig::default()
            })
            .expect("bind bench server"),
        )
    };
    let addr = attach.unwrap_or_else(|| server.as_ref().expect("in-process server").local_addr());
    eprintln!(
        "serve_bench: daemon on {addr}, {requests} request(s), {concurrency} connection(s), \
         repeat-ratio {repeat_ratio}"
    );

    // The request schedule, decided up front and deterministic in
    // --seed: each entry is the generating seed of the program to send.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sent: Vec<u64> = Vec::new();
    let mut schedule: Vec<u64> = Vec::new();
    for i in 0..requests {
        if smoke {
            // 3-request CI shape: two distinct programs, then repeat
            // the first — a guaranteed cache hit.
            schedule.push([seed, seed + 1, seed][i % 3]);
            continue;
        }
        if !sent.is_empty() && rng.gen_bool(repeat_ratio) {
            let idx: usize = rng.gen_range(0..sent.len());
            schedule.push(sent[idx]);
        } else {
            let fresh = seed + schedule.len() as u64;
            sent.push(fresh);
            schedule.push(fresh);
        }
    }

    // Fan the schedule out round-robin over the connection fleet.
    let t0 = Instant::now();
    let interval = if rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / rate))
    } else {
        None
    };
    let handles: Vec<_> = (0..concurrency)
        .map(|c| {
            let mine: Vec<(usize, u64)> = schedule
                .iter()
                .enumerate()
                .filter(|(i, _)| i % concurrency == c)
                .map(|(i, &s)| (i, s))
                .collect();
            std::thread::spawn(move || {
                let mut client = Client::connect_retrying(addr, retry).expect("connect");
                let mut samples: Vec<Sample> = Vec::new();
                let mut failures: Vec<String> = Vec::new();
                for (i, program_seed) in mine {
                    if let Some(interval) = interval {
                        // Open-loop: request i is *due* at t0 + i·Δ; if
                        // we are behind, send immediately (burst).
                        let due = t0 + interval * i as u32;
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                    }
                    let mut request = wire::Request::new(&generate(&spec(program_seed)).source);
                    request.id = format!("r{i}");
                    let sent_at = Instant::now();
                    match client.request(&request) {
                        Ok(wire::Response::Ok { cache_hit, .. }) => samples.push(Sample {
                            latency: sent_at.elapsed(),
                            cache_hit,
                        }),
                        Ok(other) => failures.push(format!("r{i}: {other:?}")),
                        Err(e) => failures.push(format!("r{i}: {e}")),
                    }
                }
                (samples, failures)
            })
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for h in handles {
        let (s, f) = h.join().expect("client thread");
        samples.extend(s);
        failures.extend(f);
    }
    let total = t0.elapsed();
    if let Some(path) = flag("--metrics-out") {
        // Through the wire, not Server::metrics_exposition(): the bench
        // should exercise the same path an operator's scraper would.
        let mut scraper = Client::connect_retrying(addr, retry).expect("connect for metrics");
        match scraper.metrics("serve-bench-final") {
            Ok((exposition, _series)) => match std::fs::write(&path, exposition) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("cannot write {path}: {e}"),
            },
            Err(e) => eprintln!("metrics request failed: {e}"),
        }
    }
    // Attached daemons outlive the bench; their accounting reads zero.
    let stats = server.map(Server::shutdown).unwrap_or_default();

    for f in &failures {
        eprintln!("request failed: {f}");
    }

    let split = |keep: Option<bool>| -> Vec<Duration> {
        let mut v: Vec<Duration> = samples
            .iter()
            .filter(|s| keep.is_none_or(|k| s.cache_hit == k))
            .map(|s| s.latency)
            .collect();
        v.sort();
        v
    };
    let (all, cached, cold) = (split(None), split(Some(true)), split(Some(false)));
    let throughput = samples.len() as f64 / total.as_secs_f64();

    println!("# serve_bench — daemon latency under load (scale: {scale:?})");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>12}",
        "class", "n", "p50(ms)", "p95(ms)", "p99(ms)"
    );
    for (name, lat) in [("all", &all), ("cached", &cached), ("cold", &cold)] {
        println!(
            "{:<8} {:>6} {:>12.3} {:>12.3} {:>12.3}",
            name,
            lat.len(),
            percentile(lat, 0.50).as_secs_f64() * 1000.0,
            percentile(lat, 0.95).as_secs_f64() * 1000.0,
            percentile(lat, 0.99).as_secs_f64() * 1000.0,
        );
    }
    println!(
        "throughput: {throughput:.1} req/s over {:.2} s | server: {stats}",
        total.as_secs_f64()
    );

    if json {
        let mut rep = bench::BenchReport::new("serve", bench::scale_name(scale));
        rep.config("requests", Json::Num(requests as i64));
        rep.config("concurrency", Json::Num(concurrency as i64));
        rep.config("repeat_ratio", Json::Float(repeat_ratio));
        rep.config("rate", Json::Float(rate));
        rep.config("seed", Json::Num(seed as i64));
        rep.config("server_jobs", Json::Num(server_jobs as i64));
        for (name, lat) in [("all", &all), ("cached", &cached), ("cold", &cold)] {
            // The full distribution, log₂-bucketed: sort-based
            // percentiles above give exact points for the table, the
            // histogram snapshot round-trips through the report so
            // `bench diff` can compare tails bucket-for-bucket.
            let hist = obs::Histogram::new();
            for d in lat.iter() {
                hist.record(d.as_micros() as u64);
            }
            let snap = hist.snapshot();
            rep.rows.push(bench::Row {
                name: name.into(),
                variant: "default".into(),
                fields: vec![
                    ("requests".into(), lat.len() as i64),
                    ("failures".into(), failures.len() as i64),
                    ("cache_hits".into(), stats.cache.hits as i64),
                    ("cache_misses".into(), stats.cache.misses as i64),
                    ("cache_evictions".into(), stats.cache.evictions as i64),
                    ("overloaded".into(), stats.overloaded as i64),
                    ("throughput_rps".into(), throughput.round() as i64),
                    ("hist_p50_us".into(), snap.quantile(0.50) as i64),
                    ("hist_p95_us".into(), snap.quantile(0.95) as i64),
                    ("hist_p99_us".into(), snap.quantile(0.99) as i64),
                ],
                times_s: vec![
                    ("p50".into(), percentile(lat, 0.50).as_secs_f64()),
                    ("p95".into(), percentile(lat, 0.95).as_secs_f64()),
                    ("p99".into(), percentile(lat, 0.99).as_secs_f64()),
                    ("total".into(), total.as_secs_f64()),
                ],
                hists: vec![("latency_us".into(), snap)],
                ..bench::Row::default()
            });
        }
        bench::finish_json_report(rep);
    }
    bench::flush_trace_out();

    if smoke {
        // CI gate: every request answered, the repeat hit the cache,
        // the drain was clean, and no thread leaked.
        assert!(failures.is_empty(), "smoke: failures {failures:?}");
        assert_eq!(samples.len(), 3, "smoke: lost responses");
        assert_eq!(stats.requests, 3, "smoke: server accounting");
        assert!(stats.cache.hits >= 1, "smoke: repeat request must hit");
        assert_eq!(cached.len() as u64, stats.cache.hits, "smoke: hit split");
        if let (Some(before), Some(after)) = (threads_before, os_threads()) {
            assert_eq!(before, after, "smoke: leaked OS threads");
        }
        println!(
            "smoke: OK (3 requests, {} cache hit(s), clean drain)",
            stats.cache.hits
        );
    } else if !failures.is_empty() {
        std::process::exit(1);
    }
}
