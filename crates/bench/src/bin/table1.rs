//! Regenerates **Table 1** of the paper: per-program benchmark
//! statistics and check results for the file-handle property, using the
//! CEGAR checker with path-slicing counterexample reduction.
//!
//! Usage: `table1 [small|medium|full] [--jobs <n>] [--retries <k>]`
//! (default: medium, sequential, no retries).

use blastlite::{CheckerConfig, Reducer};
use std::time::Duration;

fn main() {
    let scale = bench::scale_from_args();
    let config = CheckerConfig {
        reducer: Reducer::path_slice(),
        time_budget: Duration::from_secs(60),
        ..CheckerConfig::default()
    };
    let driver = bench::driver_from_args();
    println!("# Table 1 — benchmarks and analysis times (scale: {scale:?})");
    println!("# checker: CEGAR + PathSlice reducer, 60 s/check budget");
    let mut rows = Vec::new();
    for spec in workloads::suite(scale) {
        eprintln!("checking {} ...", spec.name);
        rows.push(bench::run_workload_driven(&spec, config, &driver));
    }
    bench::print_table1(&rows);
    // The paper's headline observations, as assertions on the output.
    let by_name = |n: &str| rows.iter().find(|r| r.name == n).expect("row");
    println!();
    println!(
        "# wuftpd errors found: {} (paper: 3) | privoxy: {} (paper: 2) | make: {} (paper: 1)",
        by_name("wuftpd").errors,
        by_name("privoxy").errors,
        by_name("make").errors,
    );
    let clean: usize = ["fcron", "ijpeg"]
        .iter()
        .map(|n| by_name(n).errors + by_name(n).timeouts)
        .sum();
    println!("# fcron/ijpeg unsafe-or-timeout checks: {clean} (paper: 0)");
}
