//! Regenerates **Table 1** of the paper: per-program benchmark
//! statistics and check results for the file-handle property, using the
//! CEGAR checker with path-slicing counterexample reduction.
//!
//! Usage: `table1 [small|medium|full] [--jobs <n>] [--retries <k>]
//! [--json] [--trace-out <spans.json>]` (default: medium, sequential,
//! no retries). With `--json`, tracing is enabled and a
//! `pathslice-bench/v1` report is written to `BENCH_table1.json` in the
//! current directory; `--trace-out` dumps the run's raw span trees.
//! SIGINT cancels in-flight clusters gracefully and both epilogues
//! still run.

use blastlite::{CheckerConfig, Reducer};
use obs::json::Json;
use std::time::Duration;

fn main() {
    let scale = bench::scale_from_args();
    let json = bench::json_requested();
    if json {
        obs::set_enabled(true);
    }
    let config = CheckerConfig {
        reducer: Reducer::path_slice(),
        time_budget: Duration::from_secs(60),
        ..CheckerConfig::default()
    };
    let driver = bench::driver_from_args();
    println!("# Table 1 — benchmarks and analysis times (scale: {scale:?})");
    println!("# checker: CEGAR + PathSlice reducer, 60 s/check budget");
    let mut rows = Vec::new();
    for spec in workloads::suite(scale) {
        eprintln!("checking {} ...", spec.name);
        rows.push(bench::run_workload_driven(&spec, config, &driver));
    }
    bench::print_table1(&rows);
    // The paper's headline observations, as assertions on the output.
    let by_name = |n: &str| rows.iter().find(|r| r.name == n).expect("row");
    println!();
    println!(
        "# wuftpd errors found: {} (paper: 3) | privoxy: {} (paper: 2) | make: {} (paper: 1)",
        by_name("wuftpd").errors,
        by_name("privoxy").errors,
        by_name("make").errors,
    );
    let clean: usize = ["fcron", "ijpeg"]
        .iter()
        .map(|n| by_name(n).errors + by_name(n).timeouts)
        .sum();
    println!("# fcron/ijpeg unsafe-or-timeout checks: {clean} (paper: 0)");

    if json {
        let mut rep = bench::BenchReport::new("table1", bench::scale_name(scale));
        rep.config("jobs", Json::Num(driver.jobs as i64));
        rep.config("retries", Json::Num(driver.retry.max_retries as i64));
        rep.config("time_budget_s", Json::Float(60.0));
        rep.config("reducer", Json::Str("path-slice".into()));
        for r in &rows {
            rep.push_program(r, "default");
        }
        bench::finish_json_report(rep);
    }
    bench::flush_trace_out();
}
