//! Regenerates **Figure 6**: trace projection results for the gcc-scale
//! program. The paper's largest counterexample had 82,695 basic blocks
//! and sliced to 43 operations; larger counterexamples slice below 0.1 %.
//!
//! Usage: `fig6 [small|medium|full] [--jobs <n>] [--retries <k>]
//! [--json]`. With `--json`, the scatter is printed as JSON lines and a
//! `pathslice-bench/v1` report is written to `BENCH_fig6.json`.

use blastlite::{CheckerConfig, Reducer, SearchOrder};
use obs::json::Json;
use std::time::Duration;

fn main() {
    let scale = bench::scale_from_args();
    let json = bench::json_requested();
    if json {
        obs::set_enabled(true);
    }
    let mut points = Vec::new();

    // Checker counterexamples on the gcc-like program (DFS).
    let spec = workloads::gcc_like(scale);
    let config = CheckerConfig {
        reducer: Reducer::path_slice(),
        time_budget: Duration::from_secs(45),
        search_order: SearchOrder::Dfs,
        ..CheckerConfig::default()
    };
    eprintln!("collecting checker traces from {} ...", spec.name);
    let row = bench::run_workload_driven(&spec, config, &bench::driver_from_args());
    points.extend(row.traces.iter().map(|t| bench::FigPoint {
        trace_ops: t.trace_ops,
        slice_ops: t.slice_ops,
    }));

    // Very long concrete traces: sweep the loop bound into the tens of
    // thousands of operations.
    for bound in [100i64, 400, 1500, 6000, 25_000] {
        let mut v = workloads::gcc_like(scale);
        v.loop_bound = bound;
        eprintln!("driving gcc-like with loop bound {bound} ...");
        let g = workloads::gen::generate(&v);
        points.extend(bench::executed_trace_points(&g));
    }

    bench::maybe_write_svg("Figure 6 - trace projection (gcc)", &points);
    if json {
        let mut rep = bench::BenchReport::new("fig6", bench::scale_name(scale));
        rep.config("time_budget_s", Json::Float(45.0));
        rep.config("reducer", Json::Str("path-slice".into()));
        rep.config("search_order", Json::Str("dfs".into()));
        rep.push_program(&row, "default");
        rep.points = points
            .iter()
            .map(|p| (p.trace_ops as u64, p.slice_ops as u64))
            .collect();
        bench::finish_json_report(rep);
        bench::print_fig_points_json(&mut points);
        return;
    }
    bench::print_fig_points("Figure 6 — trace projection results (gcc)", &mut points);
    if let Some(p) = points.iter().max_by_key(|p| p.trace_ops) {
        println!(
            "# largest counterexample: {} ops -> {} ops (paper: 82,695 blocks -> 43 ops)",
            p.trace_ops, p.slice_ops
        );
    }
}
