//! Ablation **A3** — the §4.2 "Unsatisfiable Path Slices" optimization:
//! asserting each taken operation's constraint and stopping at the first
//! unsatisfiable prefix. On infeasible abstract counterexamples the
//! truncated slice is shorter; on feasible traces it changes nothing.
//!
//! Usage: `ablation_earlyunsat [small|medium|full] [--json]`. With
//! `--json`, a `pathslice-bench/v1` report with one row per sliced
//! counterexample is written to `BENCH_ablation_earlyunsat.json`.

use blastlite::{reach, PredicatePool};
use dataflow::Analyses;
use rt::Budget;
use slicer::{PathSlicer, SliceOptions};
use std::time::Duration;

fn main() {
    let scale = bench::scale_from_args();
    let json = bench::json_requested();
    if json {
        obs::set_enabled(true);
    }
    let mut rep = bench::BenchReport::new("ablation_earlyunsat", bench::scale_name(scale));
    println!("# A3 — early-unsat optimization (slice sizes on abstract counterexamples)");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "program", "trace_ops", "plain", "early_stop", "truncated"
    );
    for spec in workloads::suite(scale) {
        let g = workloads::gen::generate(&spec);
        let program = g.lower();
        let analyses = Analyses::build(&program);
        let slicer = PathSlicer::new(&analyses);
        // First abstract counterexample of each *safe* cluster is
        // infeasible by construction: slice it both ways.
        let mut shown = 0;
        for cfa in program.cfas() {
            if cfa.error_locs().is_empty() || shown >= 4 {
                continue;
            }
            let mut pool = PredicatePool::new();
            let r = reach::reachable(
                &program,
                &analyses,
                &mut pool,
                cfa.error_locs(),
                200_000,
                &Budget::lasting(Duration::from_secs(20)),
                blastlite::SearchOrder::Dfs,
            );
            let reach::ReachResult::ErrorPath { path, .. } = r else {
                continue;
            };
            let plain = slicer.slice(&path, SliceOptions::default());
            let early = slicer.slice(
                &path,
                SliceOptions {
                    early_unsat: true,
                    skip_functions: false,
                },
            );
            println!(
                "{:<10} {:>12} {:>12} {:>12} {:>10}",
                spec.name,
                path.len(),
                plain.kept.len(),
                early.kept.len(),
                early.stopped_unsat,
            );
            rep.rows.push(bench::Row {
                name: spec.name.clone(),
                variant: cfa.name().to_owned(),
                fields: vec![
                    ("seed".into(), spec.seed as i64),
                    ("trace_ops".into(), path.len() as i64),
                    ("plain".into(), plain.kept.len() as i64),
                    ("early_stop".into(), early.kept.len() as i64),
                    ("truncated".into(), i64::from(early.stopped_unsat)),
                ],
                ..bench::Row::default()
            });
            shown += 1;
        }
    }
    println!("# expected shape: early_stop <= plain; truncated=true rows stopped at the core");
    if json {
        bench::finish_json_report(rep);
    }
}
