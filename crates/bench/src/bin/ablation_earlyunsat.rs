//! Ablation **A3** — the §4.2 "Unsatisfiable Path Slices" optimization:
//! asserting each taken operation's constraint and stopping at the first
//! unsatisfiable prefix. On infeasible abstract counterexamples the
//! truncated slice is shorter; on feasible traces it changes nothing.
//!
//! Usage: `ablation_earlyunsat [small|medium|full]`.

use blastlite::{reach, PredicatePool};
use dataflow::Analyses;
use rt::Budget;
use slicer::{PathSlicer, SliceOptions};
use std::time::Duration;

fn main() {
    let scale = bench::scale_from_args();
    println!("# A3 — early-unsat optimization (slice sizes on abstract counterexamples)");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "program", "trace_ops", "plain", "early_stop", "truncated"
    );
    for spec in workloads::suite(scale) {
        let g = workloads::gen::generate(&spec);
        let program = g.lower();
        let analyses = Analyses::build(&program);
        let slicer = PathSlicer::new(&analyses);
        // First abstract counterexample of each *safe* cluster is
        // infeasible by construction: slice it both ways.
        let mut shown = 0;
        for cfa in program.cfas() {
            if cfa.error_locs().is_empty() || shown >= 4 {
                continue;
            }
            let mut pool = PredicatePool::new();
            let r = reach::reachable(
                &program,
                &analyses,
                &mut pool,
                cfa.error_locs(),
                200_000,
                &Budget::lasting(Duration::from_secs(20)),
                blastlite::SearchOrder::Dfs,
            );
            let reach::ReachResult::ErrorPath { path, .. } = r else {
                continue;
            };
            let plain = slicer.slice(&path, SliceOptions::default());
            let early = slicer.slice(
                &path,
                SliceOptions {
                    early_unsat: true,
                    skip_functions: false,
                },
            );
            println!(
                "{:<10} {:>12} {:>12} {:>12} {:>10}",
                spec.name,
                path.len(),
                plain.kept.len(),
                early.kept.len(),
                early.stopped_unsat,
            );
            shown += 1;
        }
    }
    println!("# expected shape: early_stop <= plain; truncated=true rows stopped at the core");
}
