//! Regenerates **Figure 5**: reduction in trace size vs. trace size,
//! over all abstract counterexamples produced while checking the
//! application suite, plus long concrete traces driven into the planted
//! bugs across a sweep of loop bounds (the x-axis spread of the paper's
//! scatter comes from counterexamples of very different lengths).
//!
//! The paper's reading: average slice below 5 % of the trace; traces
//! over 1000 basic blocks slice below 1 %.
//!
//! Usage: `fig5 [small|medium|full] [--json]`. With `--json`, the
//! scatter is printed as JSON lines and a `pathslice-bench/v1` report
//! is written to `BENCH_fig5.json`.

use blastlite::{CheckerConfig, Reducer, SearchOrder};
use obs::json::Json;
use std::time::Duration;

fn main() {
    let scale = bench::scale_from_args();
    let json = bench::json_requested();
    if json {
        obs::set_enabled(true);
    }
    let mut rows = Vec::new();
    let mut points = Vec::new();

    // 1. Counterexamples from the checker runs (DFS order, like BLAST,
    //    so abstract counterexamples are long rather than shortest).
    let config = CheckerConfig {
        reducer: Reducer::path_slice(),
        time_budget: Duration::from_secs(30),
        search_order: SearchOrder::Dfs,
        ..CheckerConfig::default()
    };
    for spec in workloads::suite(scale) {
        eprintln!("collecting checker traces from {} ...", spec.name);
        let row = bench::run_workload(&spec, config);
        points.extend(row.traces.iter().map(|t| bench::FigPoint {
            trace_ops: t.trace_ops,
            slice_ops: t.slice_ops,
        }));
        rows.push(row);
    }

    // 2. Long feasible traces into the planted bugs, across loop-bound
    //    variants (trace length is dominated by protocol-irrelevant
    //    loops; the slice is not).
    for spec in workloads::suite(scale) {
        if spec.buggy_modules.is_empty() {
            continue;
        }
        for bound in [10i64, 40, 150, 600, 2500] {
            let mut v = spec.clone();
            v.loop_bound = bound;
            eprintln!("driving {} with loop bound {bound} ...", v.name);
            let g = workloads::gen::generate(&v);
            points.extend(bench::executed_trace_points(&g));
        }
    }

    bench::maybe_write_svg("Figure 5 - trace projection (application suite)", &points);
    if json {
        let mut rep = bench::BenchReport::new("fig5", bench::scale_name(scale));
        rep.config("time_budget_s", Json::Float(30.0));
        rep.config("reducer", Json::Str("path-slice".into()));
        rep.config("search_order", Json::Str("dfs".into()));
        for r in &rows {
            rep.push_program(r, "default");
        }
        rep.points = points
            .iter()
            .map(|p| (p.trace_ops as u64, p.slice_ops as u64))
            .collect();
        bench::finish_json_report(rep);
        bench::print_fig_points_json(&mut points);
        return;
    }
    bench::print_fig_points(
        "Figure 5 — trace projection results (application suite)",
        &mut points,
    );
}
