//! Ablation **A4** — lazy-abstraction-style predicate scoping: track
//! function-local predicates only inside their function. Compares
//! abstract-state counts and wall time with the global-pool default on
//! the benchmark suite; verdicts must not change.
//!
//! Usage: `ablation_scoping [small|medium|full] [--jobs <n>]
//! [--retries <k>] [--json]`. With `--json`, a `pathslice-bench/v1`
//! report with one row per (program, pool) cell is written to
//! `BENCH_ablation_scoping.json`.

use blastlite::{CheckerConfig, Reducer};
use obs::json::Json;
use std::time::Duration;

fn main() {
    let scale = bench::scale_from_args();
    let json = bench::json_requested();
    if json {
        obs::set_enabled(true);
    }
    let mut rep = bench::BenchReport::new("ablation_scoping", bench::scale_name(scale));
    println!("# A4 — predicate scoping (lazy-abstraction locality)");
    println!(
        "{:<10} | {:>6} {:>4} {:>12} {:>9} | {:>6} {:>4} {:>12} {:>9}",
        "", "safe", "err", "abs_states", "time(s)", "safe", "err", "abs_states", "time(s)"
    );
    println!(
        "{:<10} | {:^35} | {:^35}",
        "program", "global pool", "scoped predicates"
    );
    println!("{}", "-".repeat(88));
    let driver = bench::driver_from_args();
    for spec in workloads::suite(scale) {
        eprintln!("checking {} ...", spec.name);
        // The identity reducer is where scoping matters: its refinement
        // mines predicates over helper-function locals (loop counters),
        // which the global pool then drags through the whole exploration.
        // (With path slicing the mined predicates are all protocol
        // globals, and scoping is a no-op by construction.)
        let base = bench::run_workload_driven(
            &spec,
            CheckerConfig {
                reducer: Reducer::Identity,
                time_budget: Duration::from_secs(10),
                ..CheckerConfig::default()
            },
            &driver,
        );
        let scoped = bench::run_workload_driven(
            &spec,
            CheckerConfig {
                reducer: Reducer::Identity,
                time_budget: Duration::from_secs(10),
                scoped_predicates: true,
                ..CheckerConfig::default()
            },
            &driver,
        );
        println!(
            "{:<10} | {:>6} {:>4} {:>12} {:>9.2} | {:>6} {:>4} {:>12} {:>9.2}",
            spec.name,
            base.safe,
            base.errors,
            base.abstract_states,
            base.total_time.as_secs_f64(),
            scoped.safe,
            scoped.errors,
            scoped.abstract_states,
            scoped.total_time.as_secs_f64(),
        );
        rep.push_program(&base, "global-pool");
        rep.push_program(&scoped, "scoped");
    }
    if json {
        rep.config("jobs", Json::Num(driver.jobs as i64));
        rep.config("retries", Json::Num(driver.retry.max_retries as i64));
        rep.config("time_budget_s", Json::Float(10.0));
        rep.config("reducer", Json::Str("identity".into()));
        bench::finish_json_report(rep);
    }
    println!("# expected shape: no spurious errors either way; the scoped column");
    println!("# explores fewer abstract states per time budget (helper-local");
    println!("# predicates are not dragged across module boundaries)");
    bench::flush_trace_out();
}
