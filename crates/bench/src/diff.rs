//! `bench diff` — the perf-regression gate: compares two
//! `pathslice-bench/v1` reports (a fresh run vs. a committed baseline,
//! typically under `results/history/`) with noise-aware thresholds and
//! a machine-readable verdict.
//!
//! Metrics are classified by what kind of noise they admit:
//!
//! * **exact** — deterministic given the workload seed (`loc`,
//!   `procedures`, `checks`, `sites`, `safe`, `errors`, `mismatches`,
//!   scatter-point shape). Any drift is a hard failure: either the
//!   checker's verdicts changed or the workload generator did, and both
//!   must be deliberate.
//! * **soft** — deterministic in principle but allowed a small envelope
//!   (`timeouts`, `retries`, `refinements`, solver counters, phase
//!   *counts*): a slow CI machine can tip a borderline check over a
//!   budget. Fails when `|current − baseline|` exceeds
//!   `max(abs_slack, rel_tol · baseline)`.
//! * **time** — wall-clock (`times_s.*`, `phases_us.*.total_us`,
//!   latency quantiles). Advisory by default (a 1-CPU container is not
//!   a benchmark machine); `--time-gate` upgrades excursions beyond the
//!   time envelope to failures for dedicated perf hardware.
//!
//! The exit contract: `0` when nothing failed (warnings allowed), `1`
//! on any failure, usage/parse errors reported via `Err`. Re-diffing a
//! report against itself is always exit `0`.

use crate::report::BenchReport;
use obs::json::Json;
use std::collections::BTreeMap;

/// Tolerances for the soft and time envelopes.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative envelope for soft metrics (fraction of the baseline).
    pub rel_tol: f64,
    /// Absolute slack for soft metrics (covers small-count jitter where
    /// a relative envelope rounds to zero).
    pub abs_slack: f64,
    /// Relative envelope for time metrics.
    pub time_rel_tol: f64,
    /// Absolute slack for time metrics, in the metric's own unit
    /// (seconds for `times_s`, microseconds for `*_us`).
    pub time_abs_slack: f64,
    /// Upgrade time excursions from warnings to failures.
    pub time_gate: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            rel_tol: 0.25,
            abs_slack: 2.0,
            time_rel_tol: 0.5,
            time_abs_slack: 0.1,
            time_gate: false,
        }
    }
}

/// How a metric is gated (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Must match the baseline exactly.
    Exact,
    /// Gated by the soft envelope.
    Soft,
    /// Wall-clock: advisory unless `time_gate`.
    Time,
}

impl Class {
    fn name(self) -> &'static str {
        match self {
            Class::Exact => "exact",
            Class::Soft => "soft",
            Class::Time => "time",
        }
    }
}

/// One out-of-envelope metric (or shape mismatch).
#[derive(Debug, Clone)]
pub struct Finding {
    /// `name/variant` of the row, or `""` for report-level metrics.
    pub row: String,
    /// Dotted metric key (`fields.timeouts`, `phases_us.solve.count`).
    pub metric: String,
    /// Gate class the metric was compared under.
    pub class: Class,
    /// Baseline value (0 for shape findings).
    pub baseline: f64,
    /// Current value (0 for shape findings).
    pub current: f64,
    /// Whether this finding gates the exit code.
    pub fail: bool,
    /// Human-readable explanation.
    pub note: String,
}

/// The outcome of one report comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffResult {
    /// Bench name (from the current report).
    pub bench: String,
    /// Workload scale (from the current report).
    pub scale: String,
    /// Total metrics compared (in-envelope ones are not listed).
    pub compared: usize,
    /// Every out-of-envelope metric and shape mismatch.
    pub findings: Vec<Finding>,
}

impl DiffResult {
    /// Whether any finding gates the exit code.
    pub fn failed(&self) -> bool {
        self.findings.iter().any(|f| f.fail)
    }

    /// Renders the `pathslice-benchdiff/v1` verdict document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("pathslice-benchdiff/v1".into())),
            ("bench".into(), Json::Str(self.bench.clone())),
            ("scale".into(), Json::Str(self.scale.clone())),
            (
                "verdict".into(),
                Json::Str(if self.failed() { "regressed" } else { "ok" }.into()),
            ),
            ("compared".into(), Json::Num(self.compared as i64)),
            (
                "findings".into(),
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                ("row".into(), Json::Str(f.row.clone())),
                                ("metric".into(), Json::Str(f.metric.clone())),
                                ("class".into(), Json::Str(f.class.name().into())),
                                ("baseline".into(), Json::Float(f.baseline)),
                                ("current".into(), Json::Float(f.current)),
                                (
                                    "severity".into(),
                                    Json::Str(if f.fail { "fail" } else { "warn" }.into()),
                                ),
                                ("note".into(), Json::Str(f.note.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the human-readable summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let fails = self.findings.iter().filter(|f| f.fail).count();
        let warns = self.findings.len() - fails;
        let _ = writeln!(
            out,
            "bench diff: {} ({}) — {} metric(s) compared, {} failure(s), {} warning(s)",
            self.bench, self.scale, self.compared, fails, warns
        );
        for f in &self.findings {
            let _ = writeln!(
                out,
                "  [{}] {:<5} {}{}{}: {} -> {} ({})",
                if f.fail { "FAIL" } else { "warn" },
                f.class.name(),
                f.row,
                if f.row.is_empty() { "" } else { " " },
                f.metric,
                f.baseline,
                f.current,
                f.note
            );
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.failed() { "REGRESSED" } else { "OK" }
        );
        out
    }
}

/// Fields deterministic given the workload seed: the generator's shape
/// counts and the checker's verdict split. `seed` itself belongs here —
/// if it moved, the two reports measured different workloads.
const EXACT_FIELDS: &[&str] = &[
    "seed",
    "loc",
    "procedures",
    "checks",
    "sites",
    "safe",
    "errors",
    "mismatches",
];

fn classify(key: &str) -> Class {
    if let Some(field) = key.strip_prefix("fields.") {
        if EXACT_FIELDS.contains(&field) {
            return Class::Exact;
        }
        // Latency/throughput columns (serve_bench) are wall-clock.
        if field.ends_with("_us") || field.ends_with("_rps") {
            return Class::Time;
        }
        return Class::Soft;
    }
    if key.starts_with("times_s.") {
        return Class::Time;
    }
    if key.starts_with("phases_us.") {
        // Phase *counts* are work, gated softly; phase times are clock.
        return if key.ends_with(".count") {
            Class::Soft
        } else {
            Class::Time
        };
    }
    if key.starts_with("hists.") {
        return if key.ends_with(".count") {
            Class::Soft
        } else {
            Class::Time
        };
    }
    if key == "points.len" {
        return Class::Exact;
    }
    // Counters (solver checks, cache hits, …) and anything new.
    Class::Soft
}

/// Flattens one row (or the report-level tail) into dotted keys.
fn metrics_of_row(row: &crate::report::Row) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    for (k, v) in &row.fields {
        m.insert(format!("fields.{k}"), *v as f64);
    }
    for (k, v) in &row.times_s {
        m.insert(format!("times_s.{k}"), *v);
    }
    for p in &row.phases {
        m.insert(format!("phases_us.{}.count", p.name), p.count as f64);
        m.insert(format!("phases_us.{}.total_us", p.name), p.total_us as f64);
        m.insert(format!("phases_us.{}.self_us", p.name), p.self_us as f64);
    }
    for (k, v) in &row.counters {
        m.insert(format!("counters.{k}"), *v as f64);
    }
    for (k, h) in &row.hists {
        m.insert(format!("hists.{k}.count"), h.count as f64);
        for (q, label) in [(0.50, "p50_us"), (0.95, "p95_us"), (0.99, "p99_us")] {
            // Interpolated, matching serve_bench's hist_p* fields: the
            // raw buckets are stored, so both sides of a diff use the
            // same estimator regardless of when they were recorded.
            m.insert(
                format!("hists.{k}.{label}"),
                h.quantile_interpolated(q) as f64,
            );
        }
    }
    m
}

fn metrics_of_report(rep: &BenchReport) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    for (k, v) in &rep.counters {
        m.insert(format!("counters.{k}"), *v as f64);
    }
    m.insert("points.len".into(), rep.points.len() as f64);
    if !rep.points.is_empty() {
        let (t, s) = rep
            .points
            .iter()
            .fold((0u64, 0u64), |(t, s), &(a, b)| (t + a, s + b));
        m.insert("points.trace_ops_sum".into(), t as f64);
        m.insert("points.slice_ops_sum".into(), s as f64);
    }
    m
}

/// Compares two metric maps for one scope, appending findings.
fn compare_metrics(
    scope: &str,
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    cfg: &DiffConfig,
    result: &mut DiffResult,
) {
    for (key, &base) in baseline {
        let class = classify(key);
        let Some(&cur) = current.get(key) else {
            // A metric the baseline tracked has vanished: for gated
            // classes that silently blinds the gate, so it is a
            // failure; losing a clock column is only a warning.
            result.findings.push(Finding {
                row: scope.to_owned(),
                metric: key.clone(),
                class,
                baseline: base,
                current: 0.0,
                fail: class != Class::Time,
                note: "metric missing from current report".into(),
            });
            continue;
        };
        result.compared += 1;
        let delta = (cur - base).abs();
        let (violated, fail, envelope) = match class {
            Class::Exact => (cur != base, true, "exact match required".to_owned()),
            Class::Soft => {
                let tol = cfg.abs_slack.max(cfg.rel_tol * base.abs());
                (delta > tol, true, format!("soft envelope ±{tol:.2}"))
            }
            Class::Time => {
                let tol = cfg.time_abs_slack.max(cfg.time_rel_tol * base.abs());
                (
                    delta > tol,
                    cfg.time_gate,
                    format!("time envelope ±{tol:.2}"),
                )
            }
        };
        if violated {
            result.findings.push(Finding {
                row: scope.to_owned(),
                metric: key.clone(),
                class,
                baseline: base,
                current: cur,
                fail,
                note: envelope,
            });
        }
    }
    for (key, &cur) in current {
        if !baseline.contains_key(key) {
            // New metrics never gate: adding instrumentation must not
            // require regenerating every committed baseline first.
            result.findings.push(Finding {
                row: scope.to_owned(),
                metric: key.clone(),
                class: classify(key),
                baseline: 0.0,
                current: cur,
                fail: false,
                note: "metric new in current report (not in baseline)".into(),
            });
        }
    }
}

/// Compares a fresh report against a baseline.
pub fn diff_reports(current: &BenchReport, baseline: &BenchReport, cfg: &DiffConfig) -> DiffResult {
    let mut result = DiffResult {
        bench: current.bench.clone(),
        scale: current.scale.clone(),
        ..DiffResult::default()
    };
    let shape_fail = |result: &mut DiffResult, metric: &str, note: String| {
        result.findings.push(Finding {
            row: String::new(),
            metric: metric.to_owned(),
            class: Class::Exact,
            baseline: 0.0,
            current: 0.0,
            fail: true,
            note,
        });
    };
    if current.bench != baseline.bench {
        shape_fail(
            &mut result,
            "shape.bench",
            format!(
                "comparing `{}` against a `{}` baseline",
                current.bench, baseline.bench
            ),
        );
        return result;
    }
    if current.scale != baseline.scale {
        shape_fail(
            &mut result,
            "shape.scale",
            format!(
                "scale `{}` vs baseline scale `{}` — different workloads",
                current.scale, baseline.scale
            ),
        );
        return result;
    }
    // Config drift (jobs, budgets, seeds) changes what the numbers
    // mean; surface it, but let the metric gates decide pass/fail.
    let config_map = |r: &BenchReport| -> BTreeMap<String, String> {
        r.config
            .iter()
            .map(|(k, v)| (k.clone(), v.to_text()))
            .collect()
    };
    let (cur_cfg, base_cfg) = (config_map(current), config_map(baseline));
    for (k, bv) in &base_cfg {
        let cv = cur_cfg.get(k);
        if cv != Some(bv) {
            result.findings.push(Finding {
                row: String::new(),
                metric: format!("config.{k}"),
                class: Class::Soft,
                baseline: 0.0,
                current: 0.0,
                fail: false,
                note: format!(
                    "config drift: baseline {bv}, current {}",
                    cv.map_or("<absent>".into(), Clone::clone)
                ),
            });
        }
    }
    // Rows match by (name, variant); coverage loss is a hard failure
    // (a vanished row is how a broken bench looks "clean").
    let row_key = |r: &crate::report::Row| format!("{}/{}", r.name, r.variant);
    let base_rows: BTreeMap<String, &crate::report::Row> =
        baseline.rows.iter().map(|r| (row_key(r), r)).collect();
    let cur_rows: BTreeMap<String, &crate::report::Row> =
        current.rows.iter().map(|r| (row_key(r), r)).collect();
    for (key, base_row) in &base_rows {
        match cur_rows.get(key) {
            Some(cur_row) => compare_metrics(
                key,
                &metrics_of_row(cur_row),
                &metrics_of_row(base_row),
                cfg,
                &mut result,
            ),
            None => shape_fail(
                &mut result,
                "shape.row",
                format!("row `{key}` present in baseline but missing from current report"),
            ),
        }
    }
    for key in cur_rows.keys() {
        if !base_rows.contains_key(key) {
            result.findings.push(Finding {
                row: key.clone(),
                metric: "shape.row".into(),
                class: Class::Exact,
                baseline: 0.0,
                current: 0.0,
                fail: false,
                note: "row new in current report (not in baseline)".into(),
            });
        }
    }
    compare_metrics(
        "",
        &metrics_of_report(current),
        &metrics_of_report(baseline),
        cfg,
        &mut result,
    );
    result
}

/// The shared `bench diff` entry point behind both the `bench_diff`
/// binary and `pathslice bench diff`:
///
/// ```text
/// bench diff <current.json> <baseline.json|baseline-dir>
///            [--rel-tol <f>] [--abs-slack <n>] [--time-gate]
///            [--json-out <verdict.json>]
/// ```
///
/// A directory baseline resolves to `<dir>/BENCH_<bench>.json` using
/// the current report's bench name, so CI can point every diff at
/// `results/history/`.
///
/// # Errors
///
/// Usage, I/O, and parse errors (the caller prints them to stderr and
/// exits non-zero); a *regression* is not an `Err` but exit code `1`.
pub fn cli_main(args: &[String], out: &mut String) -> Result<i32, String> {
    let mut positional = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut json_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--rel-tol" => {
                let v = value("--rel-tol")?;
                cfg.rel_tol = v.parse().map_err(|_| format!("bad --rel-tol `{v}`"))?;
            }
            "--abs-slack" => {
                let v = value("--abs-slack")?;
                cfg.abs_slack = v.parse().map_err(|_| format!("bad --abs-slack `{v}`"))?;
            }
            "--time-gate" => cfg.time_gate = true,
            "--json-out" => json_out = Some(value("--json-out")?),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            _ => positional.push(a.clone()),
        }
    }
    // Baseline first, current second — the `diff old new` convention.
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err(
            "usage: bench diff <baseline.json|baseline-dir> <current.json> \
                    [--rel-tol <f>] [--abs-slack <n>] [--time-gate] [--json-out <path>]"
                .into(),
        );
    };
    let read_report = |path: &str| -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let current = read_report(current_path)?;
    let baseline_path = if std::path::Path::new(baseline_path).is_dir() {
        format!("{baseline_path}/BENCH_{}.json", current.bench)
    } else {
        baseline_path.clone()
    };
    let baseline = read_report(&baseline_path)?;
    let result = diff_reports(&current, &baseline, &cfg);
    out.push_str(&result.render_text());
    if let Some(path) = json_out {
        std::fs::write(&path, result.to_json().to_text() + "\n")
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(if result.failed() { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{PhaseRow, Row};

    fn report() -> BenchReport {
        let mut rep = BenchReport::new("table1", "small");
        rep.config("jobs", Json::Num(1));
        rep.rows.push(Row {
            name: "fcron".into(),
            variant: "default".into(),
            fields: vec![
                ("seed".into(), 11),
                ("loc".into(), 400),
                ("safe".into(), 5),
                ("errors".into(), 0),
                ("timeouts".into(), 0),
                ("refinements".into(), 12),
            ],
            times_s: vec![("total".into(), 1.0)],
            phases: vec![PhaseRow {
                name: "solve".into(),
                count: 40,
                total_us: 900_000,
                self_us: 900_000,
            }],
            counters: vec![("lia.checks".into(), 120)],
            hists: Vec::new(),
        });
        rep.counters = vec![("lia.checks".into(), 120)];
        rep
    }

    #[test]
    fn identical_reports_pass() {
        let rep = report();
        let result = diff_reports(&rep, &rep, &DiffConfig::default());
        assert!(!result.failed(), "{result:?}");
        assert!(result.findings.is_empty(), "{result:?}");
        assert!(result.compared > 5);
    }

    #[test]
    fn verdict_drift_is_a_hard_failure() {
        let base = report();
        let mut cur = report();
        cur.rows[0].fields[2].1 = 4; // safe: 5 -> 4
        cur.rows[0].fields[3].1 = 1; // errors: 0 -> 1
        let result = diff_reports(&cur, &base, &DiffConfig::default());
        assert!(result.failed());
        let failed: Vec<&str> = result
            .findings
            .iter()
            .filter(|f| f.fail)
            .map(|f| f.metric.as_str())
            .collect();
        assert_eq!(failed, vec!["fields.errors", "fields.safe"], "{result:?}");
    }

    #[test]
    fn soft_envelope_absorbs_jitter_but_not_regressions() {
        let base = report();
        let mut cur = report();
        // +2 refinements on 12: inside max(abs 2, 25% of 12 = 3).
        cur.rows[0].fields[5].1 = 14;
        assert!(!diff_reports(&cur, &base, &DiffConfig::default()).failed());
        // Counter +60% blows the envelope.
        cur.rows[0].counters[0].1 = 200;
        let result = diff_reports(&cur, &base, &DiffConfig::default());
        assert!(result.failed());
        assert!(result
            .findings
            .iter()
            .any(|f| f.fail && f.metric == "counters.lia.checks"));
    }

    #[test]
    fn time_is_advisory_unless_gated() {
        let base = report();
        let mut cur = report();
        cur.rows[0].times_s[0].1 = 3.0; // 3x the baseline wall clock
        let result = diff_reports(&cur, &base, &DiffConfig::default());
        assert!(!result.failed(), "{result:?}");
        assert!(
            result
                .findings
                .iter()
                .any(|f| !f.fail && f.metric == "times_s.total"),
            "excursion still surfaces as a warning: {result:?}"
        );
        let gated = DiffConfig {
            time_gate: true,
            ..DiffConfig::default()
        };
        assert!(diff_reports(&cur, &base, &gated).failed());
    }

    #[test]
    fn missing_row_and_scale_mismatch_fail() {
        let base = report();
        let mut cur = report();
        cur.rows.clear();
        let result = diff_reports(&cur, &base, &DiffConfig::default());
        assert!(result.failed());
        assert!(result.findings.iter().any(|f| f.metric == "shape.row"));

        let mut med = report();
        med.scale = "medium".into();
        let result = diff_reports(&med, &base, &DiffConfig::default());
        assert!(result.failed());
        assert_eq!(result.findings[0].metric, "shape.scale");
    }

    #[test]
    fn cli_main_round_trips_files_and_exit_codes() {
        let dir = std::env::temp_dir().join("pathslice-bench-diff-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, rep: &BenchReport| {
            let p = dir.join(name);
            std::fs::write(&p, rep.to_json().to_text()).unwrap();
            p.to_string_lossy().into_owned()
        };
        let base = report();
        let baseline = write("BENCH_table1.json", &base);
        let mut regressed = report();
        regressed.rows[0].fields[3].1 = 2;
        let bad = write("current_bad.json", &regressed);

        let mut out = String::new();
        let code = cli_main(&[baseline.clone(), baseline.clone()], &mut out).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("verdict: OK"), "{out}");

        // Directory baseline resolves via the bench name.
        let verdict = dir.join("verdict.json").to_string_lossy().into_owned();
        let args = [
            dir.to_string_lossy().into_owned(),
            bad,
            "--json-out".into(),
            verdict.clone(),
        ];
        let mut out = String::new();
        let code = cli_main(&args, &mut out).unwrap();
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("REGRESSED"), "{out}");
        let doc = Json::parse(&std::fs::read_to_string(&verdict).unwrap()).unwrap();
        assert_eq!(
            doc.field("schema").and_then(Json::as_str),
            Some("pathslice-benchdiff/v1")
        );
        assert_eq!(
            doc.field("verdict").and_then(Json::as_str),
            Some("regressed")
        );

        assert!(cli_main(&["one.json".into()], &mut String::new()).is_err());
        assert!(cli_main(
            &["a".into(), "b".into(), "--bogus".into()],
            &mut String::new()
        )
        .is_err());
    }
}
