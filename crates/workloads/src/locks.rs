//! A second property family: lock discipline.
//!
//! BLAST's original evaluations (the papers the reproduction's
//! introduction cites: SLAM, Lazy Abstraction) checked locking protocols
//! on device drivers; the path-slicing paper notes those counterexamples
//! were "typically two orders of magnitude smaller" than the application
//! traces studied here. This module generates lock-discipline programs —
//! never acquire a held lock, never release a free one — to show the
//! whole pipeline (instrumentation → CEGAR → slicing) is property-
//! agnostic, and to provide the small-trace regime for comparison.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Parameters for a lock-discipline program.
#[derive(Debug, Clone)]
pub struct LockSpec {
    /// RNG seed.
    pub seed: u64,
    /// Number of lock-owning modules.
    pub modules: usize,
    /// Modules with a planted double-acquire on a rare path.
    pub buggy_modules: Vec<usize>,
    /// Iterations of protocol-irrelevant loops.
    pub loop_bound: i64,
}

impl Default for LockSpec {
    fn default() -> Self {
        LockSpec {
            seed: 11,
            modules: 3,
            buggy_modules: vec![1],
            loop_bound: 25,
        }
    }
}

/// A generated lock program plus its statistics.
#[derive(Debug, Clone)]
pub struct LockProgram {
    /// The generating spec.
    pub spec: LockSpec,
    /// IMP source text.
    pub source: String,
    /// Non-blank lines.
    pub loc: usize,
    /// Error sites (instrumented lock operations).
    pub n_error_sites: usize,
}

impl LockProgram {
    /// Parses and lowers the generated source.
    ///
    /// # Panics
    ///
    /// Panics if the generator emitted invalid IMP.
    pub fn lower(&self) -> cfa::Program {
        let ast = imp::parse(&self.source).expect("generated source parses");
        cfa::lower(&ast).expect("generated source lowers")
    }
}

/// Generates a lock-discipline program: per module, a lock global `lk_i`
/// (0 = free, 1 = held), instrumented `acquire`/`release` functions, and
/// a driver that works under the lock. Buggy modules re-acquire on a
/// `nondet()`-guarded path — the classic double-lock defect.
pub fn generate_locks(spec: &LockSpec) -> LockProgram {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = String::new();
    let mut n_error_sites = 0usize;
    for i in 0..spec.modules {
        let _ = writeln!(out, "global lk{i}, work{i};");
    }
    out.push('\n');
    for i in 0..spec.modules {
        let buggy = spec.buggy_modules.contains(&i);
        // Instrumented lock ops (the property automaton inlined, as the
        // paper inlines the file-state automaton).
        n_error_sites += 2;
        let _ = writeln!(out, "fn m{i}_acquire() {{");
        let _ = writeln!(out, "    if (lk{i} == 1) {{ error(); }}");
        let _ = writeln!(out, "    lk{i} = 1;");
        let _ = writeln!(out, "}}");
        let _ = writeln!(out, "fn m{i}_release() {{");
        let _ = writeln!(out, "    if (lk{i} == 0) {{ error(); }}");
        let _ = writeln!(out, "    lk{i} = 0;");
        let _ = writeln!(out, "}}");
        // Protocol-irrelevant computation under the lock.
        let _ = writeln!(out, "fn m{i}_work(v) {{");
        let _ = writeln!(out, "    local t, j;");
        let _ = writeln!(out, "    t = v;");
        let _ = writeln!(
            out,
            "    for (j = 0; j < {}; j = j + 1) {{ t = t + j * {}; }}",
            spec.loop_bound,
            rng.gen_range(1..4)
        );
        let _ = writeln!(out, "    work{i} = t;");
        let _ = writeln!(out, "    return t;");
        let _ = writeln!(out, "}}");
        // Driver.
        let _ = writeln!(out, "fn m{i}_driver() {{");
        let _ = writeln!(out, "    local r, c;");
        let _ = writeln!(out, "    m{i}_acquire();");
        let _ = writeln!(out, "    r = m{i}_work({});", rng.gen_range(1..9));
        if buggy {
            // On a rare input-driven path, acquire again while held.
            let _ = writeln!(out, "    c = nondet();");
            let _ = writeln!(
                out,
                "    if (c == {}) {{ m{i}_acquire(); }}",
                rng.gen_range(2..9)
            );
        }
        let _ = writeln!(out, "    m{i}_release();");
        let _ = writeln!(out, "}}");
        out.push('\n');
    }
    let _ = writeln!(out, "fn main() {{");
    for i in 0..spec.modules {
        let _ = writeln!(out, "    lk{i} = 0; work{i} = 0;");
    }
    for i in 0..spec.modules {
        let _ = writeln!(out, "    m{i}_driver();");
    }
    let _ = writeln!(out, "}}");
    let loc = out.lines().filter(|l| !l.trim().is_empty()).count();
    LockProgram {
        spec: spec.clone(),
        source: out,
        loc,
        n_error_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blastlite::{check_program, CheckOutcome, CheckerConfig, Reducer};
    use dataflow::Analyses;
    use std::time::Duration;

    fn config() -> CheckerConfig {
        CheckerConfig {
            reducer: Reducer::path_slice(),
            time_budget: Duration::from_secs(30),
            ..CheckerConfig::default()
        }
    }

    #[test]
    fn generated_lock_programs_lower_and_validate() {
        let g = generate_locks(&LockSpec::default());
        let p = g.lower();
        cfa::validate(&p).unwrap();
        let sites: usize = p.cfas().iter().map(|c| c.error_locs().len()).sum();
        assert_eq!(sites, g.n_error_sites);
    }

    #[test]
    fn checker_finds_exactly_the_double_lock() {
        let g = generate_locks(&LockSpec::default());
        let p = g.lower();
        let an = Analyses::build(&p);
        let reports = check_program(&an, config());
        let mut bugs = Vec::new();
        for r in &reports {
            match &r.report.outcome {
                CheckOutcome::Bug { .. } => bugs.push(r.func_name.clone()),
                CheckOutcome::Safe => {}
                other => panic!("{}: {:?}", r.func_name, other),
            }
        }
        assert_eq!(
            bugs,
            vec!["m1_acquire".to_string()],
            "the planted double-lock"
        );
    }

    #[test]
    fn double_lock_witness_is_the_protocol_story() {
        let g = generate_locks(&LockSpec::default());
        let p = g.lower();
        let an = Analyses::build(&p);
        let reports = check_program(&an, config());
        let bug = reports.iter().find(|r| r.report.outcome.is_bug()).unwrap();
        let CheckOutcome::Bug { path, slice } = &bug.report.outcome else {
            unreachable!()
        };
        // The slice tells the double-lock story without the work loop:
        // lk1 := 1 (first acquire), the guarded re-entry, lk1 == 1.
        let rendered: Vec<String> = slice.iter().map(|&e| p.fmt_op(&p.edge(e).op)).collect();
        assert!(rendered.contains(&"lk1 := 1".to_string()), "{rendered:?}");
        assert!(
            rendered.contains(&"assume(lk1 == 1)".to_string()),
            "{rendered:?}"
        );
        assert!(
            rendered.iter().all(|s| !s.contains("work")),
            "work loop sliced away: {rendered:?}"
        );
        assert!(
            slice.len() * 3 <= path.len(),
            "{} of {}",
            slice.len(),
            path.len()
        );
    }

    #[test]
    fn all_safe_when_no_bugs_planted() {
        let spec = LockSpec {
            buggy_modules: vec![],
            ..LockSpec::default()
        };
        let g = generate_locks(&spec);
        let p = g.lower();
        let an = Analyses::build(&p);
        let reports = check_program(&an, config());
        assert!(!reports.is_empty());
        for r in &reports {
            assert!(
                r.report.outcome.is_safe(),
                "{}: {:?}",
                r.func_name,
                r.report.outcome
            );
        }
    }

    #[test]
    fn lock_traces_are_the_small_regime_the_paper_mentions() {
        // "counterexamples for such checks are typically two orders of
        // magnitude smaller than counterexamples arising from application
        // level programs" — device-driver-style protocol traces are
        // short even before slicing.
        let g = generate_locks(&LockSpec::default());
        let p = g.lower();
        let an = Analyses::build(&p);
        let reports = check_program(&an, config());
        let bug = reports.iter().find(|r| r.report.outcome.is_bug()).unwrap();
        let CheckOutcome::Bug { path, .. } = &bug.report.outcome else {
            unreachable!()
        };
        assert!(
            path.len() < 500,
            "protocol counterexamples stay small: {}",
            path.len()
        );
    }
}
