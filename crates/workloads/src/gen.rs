//! Deterministic source-text generation from a [`WorkloadSpec`].
//!
//! Generating *source text* (rather than CFAs directly) exercises the
//! full frontend pipeline — lexer, parser, resolver, lowering — at
//! benchmark scale, the way BLAST's CIL frontend processed real C.

use crate::spec::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// A generated benchmark program plus its headline statistics (the
/// paper's Table 1 "LOC" / "Procedures" / "checks" columns).
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// The generating spec.
    pub spec: WorkloadSpec,
    /// IMP source text.
    pub source: String,
    /// Non-blank source lines.
    pub loc: usize,
    /// Number of function definitions.
    pub n_functions: usize,
    /// Total instrumented error sites.
    pub n_error_sites: usize,
    /// Functions containing error sites (the per-function check
    /// clusters of §5).
    pub n_check_clusters: usize,
}

impl GeneratedProgram {
    /// Parses and lowers the generated source.
    ///
    /// # Panics
    ///
    /// Panics if the generator emitted invalid IMP (a bug caught by the
    /// crate's tests).
    pub fn lower(&self) -> cfa::Program {
        let ast = imp::parse(&self.source).expect("generated source parses");
        cfa::lower(&ast).expect("generated source lowers")
    }

    /// `nondet()` values that drive a concrete execution into the
    /// planted bug of `target_module` (which must be listed in
    /// `spec.buggy_modules`): earlier modules get healthy handles, the
    /// target's `fopen` returns NULL.
    pub fn inputs_reaching_bug(&self, target_module: usize) -> Vec<i64> {
        assert!(
            self.spec.buggy_modules.contains(&target_module),
            "module {target_module} has no planted bug"
        );
        let mut draws = Vec::new();
        for m in 0..self.spec.modules {
            if m == target_module {
                // popen: getrlimit succeeds (0), fopen returns NULL (0).
                draws.extend([0, 0]);
                break;
            }
            if self.spec.buggy_modules.contains(&m) {
                draws.extend([0, 7]); // healthy handle through popen
            } else {
                draws.push(7); // healthy handle
            }
        }
        draws
    }
}

/// Generates the benchmark program for `spec`. Deterministic in
/// `spec.seed`.
pub fn generate(spec: &WorkloadSpec) -> GeneratedProgram {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = String::new();
    let mut n_functions = 0usize;
    let mut n_error_sites = 0usize;
    let mut n_check_clusters = 0usize;

    // Globals. Each module owns a scratch buffer (ijpeg-style array
    // traffic that the slicer must see through).
    for i in 0..spec.modules {
        let _ = writeln!(out, "global fh{i}, st{i}, ns{i}, buf{i}[8];");
    }
    let _ = writeln!(out, "global acc;");
    out.push('\n');

    for i in 0..spec.modules {
        let buggy = spec.buggy_modules.contains(&i);
        let multi = i < spec.multi_site_modules;

        // Arithmetic helper chain (protocol-irrelevant computation).
        for k in (0..spec.helpers_per_module).rev() {
            n_functions += 1;
            let _ = writeln!(out, "fn m{i}_h{k}(v) {{");
            let _ = writeln!(out, "    local t, j;");
            let _ = writeln!(out, "    t = v + {};", rng.gen_range(1..9));
            let _ = writeln!(
                out,
                "    for (j = 0; j < {}; j = j + 1) {{ buf{i}[j % 8] = t; t = t + j * {}; }}",
                spec.loop_bound,
                rng.gen_range(1..4)
            );
            let _ = writeln!(out, "    t = t + buf{i}[{}];", rng.gen_range(0..8));
            // Padding arithmetic with data-dependent branches (the bulk
            // of the "real program" mass the slicer has to see through).
            for _ in 0..rng.gen_range(5..11) {
                let c = rng.gen_range(2..50);
                let d = rng.gen_range(1..9);
                let _ = writeln!(
                    out,
                    "    if (t > {c}) {{ t = t - {d}; }} else {{ t = t + {d}; }}"
                );
            }
            for _ in 0..rng.gen_range(2..5) {
                let m = rng.gen_range(3..9);
                let r = rng.gen_range(0..3);
                let _ = writeln!(
                    out,
                    "    if (t % {m} == {r}) {{ t = t + {}; }}",
                    rng.gen_range(1..5)
                );
            }
            if k + 1 < spec.helpers_per_module {
                let _ = writeln!(out, "    t = m{i}_h{}(t);", k + 1);
            }
            let _ = writeln!(out, "    return t;");
            let _ = writeln!(out, "}}");
            out.push('\n');
        }

        // A config-parsing style routine: loops over "entries" and
        // accumulates — protocol-irrelevant, like privoxy's config reads.
        n_functions += 1;
        let _ = writeln!(out, "fn m{i}_cfg(k) {{");
        let _ = writeln!(out, "    local v, j;");
        let _ = writeln!(out, "    v = k;");
        let _ = writeln!(
            out,
            "    for (j = 0; j < {}; j = j + 1) {{ v = v + j % {}; }}",
            spec.loop_bound / 2 + 1,
            rng.gen_range(2..6)
        );
        for _ in 0..rng.gen_range(2..6) {
            let c = rng.gen_range(5..60);
            let _ = writeln!(
                out,
                "    if (v > {c}) {{ v = v - {}; }}",
                rng.gen_range(1..6)
            );
        }
        let _ = writeln!(out, "    return v;");
        let _ = writeln!(out, "}}");
        out.push('\n');

        // The open routine. Buggy modules get the Fig. 4 `ftpd_popen`
        // shape: a resource-limit call that fails with NULL.
        if buggy {
            n_functions += 1;
            let _ = writeln!(out, "fn m{i}_popen() {{");
            let _ = writeln!(out, "    local rl, tmp, h;");
            let _ = writeln!(out, "    rl = nondet();"); // getrlimit(7, &rlp)
            let _ = writeln!(out, "    tmp = rl;");
            let _ = writeln!(out, "    if (tmp != 0) {{ return 0; }}");
            let _ = writeln!(out, "    h = nondet();"); // the FILE* from popen
            let _ = writeln!(out, "    return h;");
            let _ = writeln!(out, "}}");
            n_functions += 1;
            let _ = writeln!(out, "fn m{i}_open() {{");
            let _ = writeln!(out, "    fh{i} = m{i}_popen();");
            let _ = writeln!(
                out,
                "    if (fh{i} != 0) {{ st{i} = 1; }} else {{ st{i} = 0; }}"
            );
            let _ = writeln!(out, "}}");
        } else {
            n_functions += 1;
            let _ = writeln!(out, "fn m{i}_open() {{");
            let _ = writeln!(out, "    fh{i} = nondet();");
            let _ = writeln!(
                out,
                "    if (fh{i} != 0) {{ st{i} = 1; }} else {{ st{i} = 0; }}"
            );
            let _ = writeln!(out, "}}");
        }
        out.push('\n');

        // The instrumented read (fgets-like). Safe modules guard with
        // the null check; buggy modules use the handle unguarded —
        // exactly the wuftpd `statfilecmd` bug.
        n_functions += 1;
        n_check_clusters += 1;
        let sites = if multi { 3 } else { 1 };
        let _ = writeln!(out, "fn m{i}_read() {{");
        if buggy {
            for _ in 0..sites {
                n_error_sites += 1;
                let _ = writeln!(out, "    if (st{i} != 1) {{ error(); }}");
                let _ = writeln!(out, "    ns{i} = ns{i} + 1;");
            }
        } else {
            let _ = writeln!(out, "    if (fh{i} != 0) {{");
            for _ in 0..sites {
                n_error_sites += 1;
                let _ = writeln!(out, "        if (st{i} != 1) {{ error(); }}");
                let _ = writeln!(out, "        ns{i} = ns{i} + 1;");
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "}}");
        out.push('\n');

        // The instrumented close.
        n_functions += 1;
        n_check_clusters += 1;
        n_error_sites += 1;
        let _ = writeln!(out, "fn m{i}_close() {{");
        let _ = writeln!(out, "    if (fh{i} != 0) {{");
        let _ = writeln!(out, "        if (st{i} != 1) {{ error(); }}");
        let _ = writeln!(out, "        st{i} = 0;");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "}}");
        out.push('\n');

        // Wrapper chain burying the read under guards (deep call
        // stacks, the §4.2 skip-functions motivation).
        for d in 0..spec.wrapper_depth {
            n_functions += 1;
            let callee = if d == 0 {
                format!("m{i}_read()")
            } else {
                format!("m{i}_w{}(u)", d - 1)
            };
            let _ = writeln!(out, "fn m{i}_w{d}(a) {{");
            let _ = writeln!(out, "    local u, pad;");
            let _ = writeln!(out, "    u = a + {};", rng.gen_range(1..5));
            // The `pad` write between the guard and the call is what the
            // §4.2 skip-functions optimization needs to short-circuit the
            // frame (a not-taken edge whose prefix writes nothing live).
            let _ = writeln!(
                out,
                "    if (u != {}) {{ pad = u - 1; ns{i} = ns{i} + pad; {callee}; }}",
                rng.gen_range(100..999)
            );
            let _ = writeln!(out, "}}");
            out.push('\n');
        }

        // The driver: open, crunch, read (through wrappers), close.
        n_functions += 1;
        let _ = writeln!(out, "fn m{i}_driver() {{");
        let _ = writeln!(out, "    local r, q;");
        let _ = writeln!(out, "    m{i}_open();");
        let _ = writeln!(out, "    r = m{i}_cfg({});", rng.gen_range(1..9));
        let _ = writeln!(out, "    r = m{i}_h0(r + {});", rng.gen_range(1..20));
        let _ = writeln!(out, "    ns{i} = r;");
        for _ in 0..spec.driver_loops {
            let _ = writeln!(
                out,
                "    for (q = 0; q < {}; q = q + 1) {{ acc = acc + q; }}",
                spec.loop_bound
            );
        }
        // The wrappers are guarded by *control-flow plumbing* (small
        // constants threaded down), not by the crunched data — like the
        // paper's programs, where call-stack guards test flags and modes
        // rather than the buffers being processed. Passing `r` here
        // would make the entire helper chain data-relevant to the
        // guards and inflate every slice.
        if spec.wrapper_depth > 0 {
            let _ = writeln!(
                out,
                "    m{i}_w{}({});",
                spec.wrapper_depth - 1,
                rng.gen_range(1..7)
            );
        } else {
            let _ = writeln!(out, "    m{i}_read();");
        }
        let _ = writeln!(out, "    m{i}_close();");
        let _ = writeln!(out, "}}");
        out.push('\n');
    }

    // main.
    let _ = writeln!(out, "fn main() {{");
    for i in 0..spec.modules {
        let _ = writeln!(out, "    fh{i} = 0; st{i} = 0; ns{i} = 0;");
    }
    let _ = writeln!(out, "    acc = 0;");
    for i in 0..spec.modules {
        let _ = writeln!(out, "    m{i}_driver();");
    }
    let _ = writeln!(out, "}}");
    n_functions += 1;

    let loc = out.lines().filter(|l| !l.trim().is_empty()).count();
    GeneratedProgram {
        spec: spec.clone(),
        source: out,
        loc,
        n_functions,
        n_error_sites,
        n_check_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{gcc_like, suite, Scale};
    use semantics::{ExecOutcome, Interp, ReplayOracle, State};

    #[test]
    fn all_suite_programs_parse_and_lower() {
        for spec in suite(Scale::Small) {
            let g = generate(&spec);
            let p = g.lower();
            cfa::validate(&p).unwrap();
            assert_eq!(p.cfas().len(), g.n_functions, "{}", spec.name);
            let sites: usize = p.cfas().iter().map(|c| c.error_locs().len()).sum();
            assert_eq!(sites, g.n_error_sites, "{}", spec.name);
            let clusters = p
                .cfas()
                .iter()
                .filter(|c| !c.error_locs().is_empty())
                .count();
            assert_eq!(clusters, g.n_check_clusters, "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &suite(Scale::Small)[1];
        assert_eq!(generate(spec).source, generate(spec).source);
    }

    #[test]
    fn gcc_like_is_substantially_larger() {
        let small = generate(&suite(Scale::Small)[0]);
        let gcc = generate(&gcc_like(Scale::Small));
        assert!(gcc.loc > 4 * small.loc);
        gcc.lower();
    }

    #[test]
    fn planted_bugs_are_concretely_reachable() {
        for spec in suite(Scale::Small) {
            let g = generate(&spec);
            if spec.buggy_modules.is_empty() {
                continue;
            }
            let p = g.lower();
            for &m in &spec.buggy_modules {
                let inputs = g.inputs_reaching_bug(m);
                let r = Interp::run(
                    &p,
                    State::zeroed(&p),
                    &mut ReplayOracle::new(inputs),
                    50_000_000,
                );
                assert!(
                    matches!(r.outcome, ExecOutcome::ReachedError(_)),
                    "{} module {m}: {:?}",
                    spec.name,
                    r.outcome
                );
                // And the error is in the buggy module's read function.
                let ExecOutcome::ReachedError(loc) = r.outcome else {
                    unreachable!()
                };
                assert_eq!(p.cfa(loc.func).name(), format!("m{m}_read"));
            }
        }
    }

    #[test]
    fn safe_modules_never_error_on_random_inputs() {
        let spec = &suite(Scale::Small)[0]; // fcron: no planted bugs
        let g = generate(spec);
        let p = g.lower();
        for seed in 0..30 {
            let mut oracle = semantics::RngOracle::new(seed);
            let r = Interp::run(&p, State::zeroed(&p), &mut oracle, 50_000_000);
            assert!(
                matches!(r.outcome, ExecOutcome::Completed),
                "seed {seed}: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn loc_grows_with_scale() {
        let s: usize = suite(Scale::Small).iter().map(|sp| generate(sp).loc).sum();
        let m: usize = suite(Scale::Medium).iter().map(|sp| generate(sp).loc).sum();
        assert!(m > 2 * s, "{s} -> {m}");
    }
}
