//! `workloads` — synthetic benchmark programs modeled on the paper's
//! §5 suite (fcron, wuftpd, make, privoxy, ijpeg, openssh, gcc).
//!
//! The paper checks the *file-handle protocol* on real C packages: the
//! return value of `fopen`/`fdopen` is an open file pointer iff non-null;
//! `fgets`/`fprintf`/`fputs` require an open file; `fclose` requires an
//! open file and closes it. We cannot ship those packages' sources, so
//! this crate generates IMP programs with the same *shape* (see
//! `DESIGN.md` §5, substitutions): many procedures organized in modules,
//! each module owning a file handle that is opened (`h = nondet()`
//! models `fopen`'s result, with the instrumentation state variable set
//! exactly when the handle is non-null), threaded through noisy
//! computation — loops, arithmetic helper chains, deep call stacks — and
//! finally used and closed, either *guarded* by the null check (safe) or
//! *unguarded* (the planted bugs, mirroring the wuftpd `ftpd_popen`
//! pattern of Fig. 4).
//!
//! What makes these programs interesting for path slicing is exactly
//! what made the paper's programs interesting: the abstract
//! counterexamples traverse mountains of protocol-irrelevant code, and
//! the slices keep only the handful of handle operations.

//!
//! # Example
//!
//! ```
//! let spec = &workloads::suite(workloads::Scale::Small)[0]; // fcron-like
//! let generated = workloads::gen::generate(spec);
//! assert!(generated.loc > 100);
//! let program = generated.lower();
//! assert_eq!(program.cfas().len(), generated.n_functions);
//! ```

pub mod gen;
pub mod locks;
pub mod spec;

pub use gen::GeneratedProgram;
pub use locks::{generate_locks, LockProgram, LockSpec};
pub use spec::{gcc_like, suite, Scale, WorkloadSpec};
