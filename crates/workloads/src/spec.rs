//! Workload specifications mirroring the paper's Table 1 benchmarks.

/// Global size multiplier for the generated suite.
///
/// The paper's packages range from 12 KLOC (fcron) to 114 KLOC
/// (openssh, preprocessed). Generated IMP is denser than preprocessed C,
/// and the experiment's *shape* (which configuration wins, how slice
/// ratios scale with trace length) is insensitive to absolute size, so
/// the default scale targets minutes-not-hours wall clock; `Full`
/// approaches paper-scale line counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Quick CI-sized programs.
    Small,
    /// Default benchmarking scale.
    #[default]
    Medium,
    /// Paper-scale programs (slow).
    Full,
}

impl Scale {
    fn mult(self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Medium => 6,
            Scale::Full => 20,
        }
    }
}

/// Parameters of one generated benchmark program.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Program name (matches the paper's Table 1 rows).
    pub name: String,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
    /// Number of file-handle modules.
    pub modules: usize,
    /// Arithmetic helper functions chained per module.
    pub helpers_per_module: usize,
    /// Loop iterations inside each helper (drives trace length).
    pub loop_bound: i64,
    /// Noise loops in each driver.
    pub driver_loops: usize,
    /// Extra guard depth: helpers are called through this many nested
    /// wrapper functions (deep call stacks, §4.2 motivation).
    pub wrapper_depth: usize,
    /// Indices of modules whose *use* of the handle skips the null
    /// check — the planted, genuinely reachable bugs.
    pub buggy_modules: Vec<usize>,
    /// Modules whose read function contains several instrumented sites.
    pub multi_site_modules: usize,
}

impl WorkloadSpec {
    /// Number of planted bugs.
    pub fn expected_bugs(&self) -> usize {
        self.buggy_modules.len()
    }
}

/// The six application benchmarks of Table 1. Module counts and code
/// sizes scale with the paper's relative program sizes; wuftpd, make and
/// privoxy carry the bugs the paper found (3, 1, 2 respectively).
pub fn suite(scale: Scale) -> Vec<WorkloadSpec> {
    let m = scale.mult();
    vec![
        WorkloadSpec {
            name: "fcron".into(),
            seed: 101,
            modules: 2 * m,
            helpers_per_module: 3,
            loop_bound: 40,
            driver_loops: 1,
            wrapper_depth: 1,
            buggy_modules: vec![],
            multi_site_modules: 1,
        },
        WorkloadSpec {
            name: "wuftpd".into(),
            seed: 202,
            modules: 4 * m,
            helpers_per_module: 4,
            loop_bound: 60,
            driver_loops: 2,
            wrapper_depth: 2,
            buggy_modules: vec![1, 2, 3],
            multi_site_modules: 2,
        },
        WorkloadSpec {
            name: "make".into(),
            seed: 303,
            modules: 5 * m,
            helpers_per_module: 4,
            loop_bound: 50,
            driver_loops: 2,
            wrapper_depth: 1,
            buggy_modules: vec![2],
            multi_site_modules: 2,
        },
        WorkloadSpec {
            name: "privoxy".into(),
            seed: 404,
            modules: 6 * m,
            helpers_per_module: 4,
            loop_bound: 60,
            driver_loops: 2,
            wrapper_depth: 2,
            buggy_modules: vec![0, 4],
            multi_site_modules: 2,
        },
        WorkloadSpec {
            name: "ijpeg".into(),
            seed: 505,
            modules: 5 * m,
            helpers_per_module: 5,
            loop_bound: 80,
            driver_loops: 3,
            wrapper_depth: 1,
            buggy_modules: vec![],
            multi_site_modules: 2,
        },
        WorkloadSpec {
            name: "openssh".into(),
            seed: 606,
            modules: 8 * m,
            helpers_per_module: 5,
            loop_bound: 70,
            driver_loops: 3,
            wrapper_depth: 3,
            buggy_modules: vec![],
            multi_site_modules: 3,
        },
    ]
}

/// The gcc-scale program used for Figure 6: far more modules and much
/// larger loop bounds, so executed/unrolled traces reach the paper's
/// tens-of-thousands-of-operations range.
pub fn gcc_like(scale: Scale) -> WorkloadSpec {
    let m = scale.mult();
    WorkloadSpec {
        name: "gcc".into(),
        seed: 707,
        modules: 12 * m,
        helpers_per_module: 6,
        loop_bound: 400,
        driver_loops: 3,
        wrapper_depth: 3,
        buggy_modules: vec![5],
        multi_site_modules: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_roster() {
        let names: Vec<String> = suite(Scale::Small).into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["fcron", "wuftpd", "make", "privoxy", "ijpeg", "openssh"]
        );
    }

    #[test]
    fn planted_bug_counts_follow_the_paper() {
        let by_name: Vec<(String, usize)> = suite(Scale::Small)
            .into_iter()
            .map(|s| (s.name.clone(), s.expected_bugs()))
            .collect();
        let get = |n: &str| by_name.iter().find(|(name, _)| name == n).unwrap().1;
        assert_eq!(get("wuftpd"), 3, "paper found 3 violations in wuftpd");
        assert_eq!(
            get("privoxy"),
            2,
            "paper reported 2 error traces in privoxy"
        );
        assert_eq!(get("make"), 1);
        assert_eq!(get("fcron") + get("ijpeg") + get("openssh"), 0);
    }

    #[test]
    fn scales_are_monotone() {
        for (a, b) in [(Scale::Small, Scale::Medium), (Scale::Medium, Scale::Full)] {
            let sa: usize = suite(a).iter().map(|s| s.modules).sum();
            let sb: usize = suite(b).iter().map(|s| s.modules).sum();
            assert!(sa < sb);
        }
    }

    #[test]
    fn buggy_modules_are_in_range() {
        for s in suite(Scale::Small).iter().chain([&gcc_like(Scale::Small)]) {
            for &b in &s.buggy_modules {
                assert!(
                    b < s.modules,
                    "{}: buggy module {b} out of {}",
                    s.name,
                    s.modules
                );
            }
        }
    }
}
