//! Offline stand-in for the `rand` crate.
//!
//! The workspace must build with no network access (the container has no
//! crates.io mirror), so this crate vendors the tiny API subset the
//! workspace actually uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`Rng::gen_range`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — fast,
//! high-quality, and fully deterministic per seed. Streams differ from
//! upstream `rand`'s ChaCha-based `StdRng`, which is fine: every consumer
//! in this workspace treats the stream as an arbitrary deterministic
//! function of the seed, never as a stable cross-version artifact.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods over a generator core.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: RangeBounds<T>,
    {
        let (lo, hi_inclusive) = range.to_inclusive_bounds();
        T::sample_inclusive(self.next_u64(), lo, hi_inclusive)
    }

    /// A bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// `true` with probability `numerator/denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(numerator <= denominator && denominator > 0);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

/// Integer range bounds accepted by [`Rng::gen_range`].
pub trait RangeBounds<T> {
    /// The `(low, high)` pair, high inclusive.
    fn to_inclusive_bounds(&self) -> (T, T);
}

impl<T: Copy + Dec> RangeBounds<T> for core::ops::Range<T> {
    fn to_inclusive_bounds(&self) -> (T, T) {
        (self.start, self.end.dec())
    }
}

impl<T: Copy> RangeBounds<T> for core::ops::RangeInclusive<T> {
    fn to_inclusive_bounds(&self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Decrement, for converting exclusive to inclusive upper bounds.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

/// Types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Sized {
    /// Maps 64 random bits into `[lo, hi]` (inclusive).
    fn sample_inclusive(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self - 1
            }
        }
        impl SampleUniform for $t {
            fn sample_inclusive(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64 as u128 + 1;
                let off = (bits as u128 % span) as $wide;
                ((lo as $wide).wrapping_add(off)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = r.gen_range(1..4);
            assert!((1..4).contains(&w));
            let x: i64 = r.gen_range(-3..=3);
            assert!((-3..=3).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_biased_correctly() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&heads), "{heads}");
    }
}
