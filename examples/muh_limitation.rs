//! Reproduces the paper's `muh` limitation (§5 "Limitations"): muh, an
//! IRC proxy, keeps its file pointers in a hash table of linked lists,
//! and "since we do not model the heap precisely, Blast was unable to
//! reason about file pointers being put inside these linked lists" — 9
//! of its checks failed with spurious errors or missing predicates.
//!
//! The analogue here: the open/closed state lives behind a multi-target
//! pointer (a two-entry "table"). The program is actually safe, but
//! writes through the pointer are weak updates for the whole pipeline —
//! alias analysis, trace encoding, predicate abstraction — so the
//! checker cannot verify it. This is the documented, faithful failure
//! mode, not a bug in the reproduction.
//!
//! Run with: `cargo run -p pathslicing --example muh_limitation`

use pathslicing::prelude::*;
use std::time::Duration;

const MUH: &str = r#"
    global chan_a, chan_b, sel;
    fn main() {
        local entry;
        // "hash lookup": pick a channel's state cell.
        sel = nondet();
        if (sel > 0) { entry = &chan_a; } else { entry = &chan_b; }
        // open the selected channel (write through the table pointer)
        *entry = 1;
        // use the channel we just opened: really safe...
        if (sel > 0) {
            if (chan_a != 1) { error(); }
        } else {
            if (chan_b != 1) { error(); }
        }
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = pathslicing::compile(MUH)?;
    let analyses = Analyses::build(&program);

    // Ground truth: no input reaches the error.
    for seed in 0..200 {
        let mut oracle = RngOracle::new(seed);
        let run = Interp::run(&program, State::zeroed(&program), &mut oracle, 10_000);
        assert!(
            matches!(run.outcome, ExecOutcome::Completed),
            "the program is concretely safe"
        );
    }
    println!("concrete testing: 200 random runs, no error — the program is safe.");

    // The pointer has two may-targets, so *entry := 1 is a weak update.
    let entry = program.vars().lookup("main::entry").unwrap();
    println!(
        "points-to(entry) has {} targets → writes through it are weak updates",
        analyses.alias().points_to(entry).count()
    );

    // The checker, like BLAST on muh, cannot verify it.
    let config = CheckerConfig {
        reducer: Reducer::path_slice(),
        time_budget: Duration::from_secs(10),
        max_refinements: 16,
        ..CheckerConfig::default()
    };
    let reports = check_program(&analyses, config);
    let outcome = &reports[0].report.outcome;
    println!(
        "checker verdict: {} — a false alarm / failed check, exactly the paper's muh result",
        match outcome {
            CheckOutcome::Safe => "SAFE (unexpected!)",
            CheckOutcome::Bug { .. } => "BUG (spurious: heap imprecision)",
            CheckOutcome::Timeout(_) => "CHECK FAILED (no heap predicates available)",
            CheckOutcome::InternalError { .. } => "INTERNAL ERROR",
            CheckOutcome::CertificateMismatch { .. } => "CERTIFICATE MISMATCH",
        }
    );
    assert!(
        !outcome.is_safe(),
        "if this starts verifying, the heap model gained precision — update the docs!"
    );
    println!("\nthe paper's take (§5): \"We believe that techniques from shape analysis");
    println!("may help in this example.\" — out of scope there, and out of scope here.");
    Ok(())
}
