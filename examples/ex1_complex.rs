//! The paper's Ex1 (Figure 2): path slicing vs. static slicing.
//!
//! `complex()` computes something hard to reason about; its result flows
//! into `x` only on the then-branch. A static backward slice of the ERR
//! location must keep `complex()` (some path uses its result), but the
//! path slice of the else-branch path eliminates it entirely — and is
//! feasible, proving ERR reachable from every state with `a <= 0`
//! (Example 6 in the paper).
//!
//! Run with: `cargo run -p pathslicing --example ex1_complex`

use pathslicing::prelude::*;

const EX1: &str = r#"
    global a, x;
    fn complex() {
        // stands in for "factors large numbers": opaque computation
        local t;
        t = nondet();
        if (t < 0) { t = 0 - t; }
        return t;
    }
    fn main() {
        local r;
        if (a > 0) {
            r = complex();
            x = r;
        } else {
            x = 0 - 1;
        }
        if (x < 0) { error(); }
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = pathslicing::compile(EX1)?;
    let analyses = Analyses::build(&program);
    let complex_fn = program.func_id("complex").expect("complex defined");

    // --- static slicing (the baseline the paper contrasts with) -------
    let err = program.cfa(program.main()).error_locs()[0];
    let static_slice = StaticSlicer::new(&analyses).slice(err);
    println!(
        "static slice: {} of {} edges ({:.1}%), keeps complex(): {}",
        static_slice.edges.len(),
        program.n_edges(),
        static_slice.ratio_percent(&program),
        static_slice.touches_function(complex_fn),
    );
    assert!(
        static_slice.touches_function(complex_fn),
        "static slicing cannot drop complex()"
    );

    // --- path slicing on the else-branch path --------------------------
    let mut init = State::zeroed(&program);
    init.set(program.vars().lookup("a").unwrap(), -1);
    let run = Interp::run(&program, init, &mut ReplayOracle::new(vec![]), 100_000);
    assert!(matches!(run.outcome, ExecOutcome::ReachedError(_)));

    let result = PathSlicer::new(&analyses).slice(&run.path, SliceOptions::default());
    println!("\n{}", render_slice(&program, &run.path, &result));
    let keeps_complex = result.edges.iter().any(|e| e.func == complex_fn)
        || result.edges.iter().any(
            |e| matches!(program.edge(*e).op, pathslicing::cfa::Op::Call(f) if f == complex_fn),
        );
    println!("path slice keeps complex(): {keeps_complex}");
    assert!(
        !keeps_complex,
        "the paper's point: the path slice drops complex() entirely"
    );

    // --- and the slice is feasible: ERR is truly reachable -------------
    let ops: Vec<&pathslicing::cfa::Op> =
        result.edges.iter().map(|&e| &program.edge(e).op).collect();
    let (_, verdict, _) = pathslicing::semantics::trace_feasibility(
        analyses.alias(),
        ops,
        &pathslicing::lia::Solver::new(),
    );
    println!(
        "slice feasible: {} (⟹ every state with a <= 0 reaches ERR)",
        verdict.is_sat()
    );
    assert!(verdict.is_sat());
    Ok(())
}
