//! The paper's Ex2 (Figure 1): slicing away a thousand-iteration loop.
//!
//! Without the shaded lines, ERR is reachable but every feasible path
//! must unroll the loop 1000 times; the path slice of a one-unrolling
//! (infeasible!) path keeps just the two branches — and is feasible,
//! certifying reachability without ever reasoning about the loop
//! (Examples 3 and 5). With the shaded lines, ERR is unreachable and the
//! slice is infeasible, exposing exactly the inconsistent branch pair
//! (Example 4).
//!
//! Run with: `cargo run -p pathslicing --example ex2_loop`

use pathslicing::prelude::*;

fn program_text(shaded: bool) -> String {
    format!(
        r#"
        global a, x;
        fn f() {{ local t; t = t + 1; }}
        fn main() {{
            local i;
            {}
            for (i = 1; i <= 1000; i = i + 1) {{ f(); }}
            if (a >= 0) {{
                if (x == 0) {{ error(); }}
            }}
        }}
        "#,
        if shaded {
            "x = 0; if (a >= 0) { x = 1; }"
        } else {
            ""
        }
    )
}

fn slice_of_error_path(src: &str) -> Result<(), Box<dyn std::error::Error>> {
    let program = pathslicing::compile(src)?;
    let analyses = Analyses::build(&program);

    // Get an abstract error path from the model checker's first
    // iteration (possibly infeasible — that is the input path slicing is
    // designed for).
    let mut pool = pathslicing::blastlite::PredicatePool::new();
    let targets = program.cfa(program.main()).error_locs().to_vec();
    let reach = pathslicing::blastlite::reach::reachable(
        &program,
        &analyses,
        &mut pool,
        &targets,
        1_000_000,
        &pathslicing::rt::Budget::lasting(std::time::Duration::from_secs(30)),
        SearchOrder::Dfs,
    );
    let pathslicing::blastlite::reach::ReachResult::ErrorPath { path, .. } = reach else {
        return Err("expected an abstract error path".into());
    };
    println!("abstract counterexample: {} operations", path.len());

    let result = PathSlicer::new(&analyses).slice(&path, SliceOptions::default());
    println!("{}", render_slice(&program, &path, &result));

    let ops: Vec<&pathslicing::cfa::Op> =
        result.edges.iter().map(|&e| &program.edge(e).op).collect();
    let (_, verdict, _) = pathslicing::semantics::trace_feasibility(
        analyses.alias(),
        ops,
        &pathslicing::lia::Solver::new(),
    );
    println!(
        "slice verdict: {}\n",
        if verdict.is_sat() {
            "FEASIBLE — the target is reachable (modulo termination)"
        } else {
            "INFEASIBLE — so the original path is infeasible too"
        }
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Ex2 without the shaded lines (target reachable) ===");
    slice_of_error_path(&program_text(false))?;

    println!("=== Ex2 with the shaded lines (target unreachable) ===");
    slice_of_error_path(&program_text(true))?;

    println!("=== and the full check, via CEGAR + path slicing ===");
    let program = pathslicing::compile(&program_text(true))?;
    let analyses = Analyses::build(&program);
    let reports = check_program(&analyses, CheckerConfig::default());
    println!(
        "verdict for the shaded program: {:?} after {} refinements",
        if reports[0].report.outcome.is_safe() {
            "SAFE"
        } else {
            "NOT SAFE"
        },
        reports[0].report.refinements
    );
    assert!(reports[0].report.outcome.is_safe());
    Ok(())
}
