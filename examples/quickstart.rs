//! Quickstart: compile a program, execute it to an error, and slice the
//! resulting path.
//!
//! Run with: `cargo run -p pathslicing --example quickstart`

use pathslicing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small program with an input-dependent bug buried behind
    // irrelevant computation.
    let src = r#"
        global total, limit;
        fn busywork(v) {
            local t, i;
            t = v;
            for (i = 0; i < 100; i = i + 1) { t = t + i; }
            return t;
        }
        fn main() {
            local amount;
            total = busywork(3);
            amount = nondet();
            total = total + 1;
            if (amount > limit) {
                if (limit == 0) { error(); }
            }
        }
    "#;

    // 1. Compile: lex → parse → resolve → lower to control flow automata.
    let program = pathslicing::compile(src)?;
    println!(
        "compiled: {} functions, {} locations, {} edges",
        program.cfas().len(),
        program.n_locs(),
        program.n_edges()
    );

    // 2. Build the dataflow analyses the slicer consults (By, WrBt,
    //    Mods, alias information).
    let analyses = Analyses::build(&program);

    // 3. Execute the program with a concrete input that triggers the
    //    error (amount = 5 with limit at its default 0).
    let run = Interp::run(
        &program,
        State::zeroed(&program),
        &mut ReplayOracle::new(vec![5]),
        100_000,
    );
    let ExecOutcome::ReachedError(loc) = run.outcome else {
        return Err("expected the execution to reach the error".into());
    };
    println!(
        "\nexecution reached ERR in `{}` after {} operations",
        program.cfa(loc.func).name(),
        run.path.len()
    );

    // 4. Slice the executed path: only the operations relevant to
    //    reaching ERR remain — busywork() and its 100-iteration loop
    //    disappear.
    let slicer = PathSlicer::new(&analyses);
    let result = slicer.slice(&run.path, SliceOptions::default());
    println!("\n{}", render_slice(&program, &run.path, &result));

    // 5. The slice is tiny compared to the path.
    println!(
        "kept {} of {} operations ({:.2}%)",
        result.kept.len(),
        run.path.len(),
        result.ratio_percent(run.path.len())
    );
    assert!(result.kept.len() < 10);
    Ok(())
}
