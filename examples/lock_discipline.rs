//! The lock-discipline property family: the SLAM/BLAST classic that the
//! paper contrasts with its application-level checks ("counterexamples
//! for such checks are typically two orders of magnitude smaller").
//!
//! Generates a lock workload with one planted double-acquire, checks it,
//! and shows the witness slice telling the protocol story.
//!
//! Run with: `cargo run --release -p pathslicing --example lock_discipline`

use pathslicing::prelude::*;
use pathslicing::workloads::{generate_locks, LockSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = LockSpec::default();
    let generated = generate_locks(&spec);
    println!(
        "generated lock program: {} LOC, {} instrumented lock operations",
        generated.loc, generated.n_error_sites
    );
    let program = generated.lower();
    let analyses = Analyses::build(&program);
    let reports = check_program(&analyses, CheckerConfig::default());

    let mut max_trace = 0usize;
    for r in &reports {
        let verdict = match &r.report.outcome {
            CheckOutcome::Safe => "SAFE",
            CheckOutcome::Bug { .. } => "BUG ",
            CheckOutcome::Timeout(_) => "T/O ",
            CheckOutcome::InternalError { .. } => "ERR ",
            CheckOutcome::CertificateMismatch { .. } => "BAD ",
        };
        println!(
            "  {:<16} {}  ({} refinement(s))",
            r.func_name, verdict, r.report.refinements
        );
        for t in &r.report.traces {
            max_trace = max_trace.max(t.trace_ops);
        }
        if let CheckOutcome::Bug { path, slice } = &r.report.outcome {
            println!(
                "    witness: {} of {} ops — the double-lock story:",
                slice.len(),
                path.len()
            );
            for &e in slice {
                println!("      {}", program.fmt_op(&program.edge(e).op));
            }
        }
    }
    println!(
        "\nlargest abstract counterexample: {max_trace} ops — protocol traces stay small,\n\
         as the paper notes for device-driver-style checks, while the application\n\
         suite's traces run into the thousands (see `fig5`)."
    );
    let bugs = reports.iter().filter(|r| r.report.outcome.is_bug()).count();
    assert_eq!(bugs, spec.buggy_modules.len());
    Ok(())
}
