//! CEGAR walkthrough: how the checker, the slicer, and the refinement
//! cooperate on a safe program with an irrelevant loop — the paper's §1
//! motivation in miniature.
//!
//! Run with: `cargo run -p pathslicing --example checker_demo`

use pathslicing::prelude::*;
use std::time::Duration;

const SRC: &str = r#"
    global a, x, acc;
    fn spin() {
        local i;
        for (i = 0; i < 200; i = i + 1) { acc = acc + i; }
    }
    fn main() {
        x = 0;
        if (a >= 0) { x = 1; }
        spin();
        if (a >= 0) {
            if (x == 0) { error(); }
        }
    }
"#;

fn run(reducer: Reducer, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let program = pathslicing::compile(SRC)?;
    let analyses = Analyses::build(&program);
    let config = CheckerConfig {
        reducer,
        time_budget: Duration::from_secs(10),
        max_refinements: 12,
        ..CheckerConfig::default()
    };
    let reports = check_program(&analyses, config);
    let r = &reports[0].report;
    println!("--- {label} ---");
    println!(
        "outcome: {:>8?} | refinements: {:>2} | predicates: {:>2} | wall: {:?}",
        match &r.outcome {
            CheckOutcome::Safe => "SAFE",
            CheckOutcome::Bug { .. } => "BUG",
            CheckOutcome::Timeout(_) => "TIMEOUT",
            CheckOutcome::InternalError { .. } => "INTERNAL ERROR",
            CheckOutcome::CertificateMismatch { .. } => "MISMATCH",
        },
        r.refinements,
        r.n_predicates,
        r.wall
    );
    for (i, t) in r.traces.iter().enumerate() {
        println!(
            "  counterexample {}: {} ops, reduced to {} ({:.1}%)",
            i + 1,
            t.trace_ops,
            t.slice_ops,
            t.ratio_percent()
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("program: x set to 1 exactly when a >= 0; a 200-iteration loop in between;");
    println!("ERR guarded by (a >= 0 && x == 0) — unreachable, but only with the right");
    println!("predicates. Compare how the two reducers fare:\n");
    run(Reducer::path_slice(), "CEGAR with path slicing (the paper)")?;
    run(Reducer::Identity, "CEGAR without slicing (pre-paper BLAST)")?;
    println!("path slicing keeps the loop out of every counterexample, so refinement");
    println!("discovers only the x/a predicates; without it, refinement chases loop");
    println!("unrollings (one more predicate per round) until a budget trips.");
    Ok(())
}
