//! The wuftpd bug of the paper's Figure 4: `ftpd_popen` can return NULL
//! when `getrlimit` fails, and `statfilecmd` passes the unchecked file
//! pointer to `fgets`.
//!
//! We reproduce the scenario on the wuftpd-like generated workload: the
//! checker finds the violation and the path slice is the succinct
//! witness a user reads instead of the full trace.
//!
//! Run with: `cargo run --release -p pathslicing --example wuftpd_bug`

use pathslicing::prelude::*;
use pathslicing::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = workloads::suite(workloads::Scale::Small)
        .into_iter()
        .find(|s| s.name == "wuftpd")
        .expect("wuftpd spec");
    let generated = workloads::gen::generate(&spec);
    println!(
        "generated wuftpd-like program: {} LOC, {} procedures, {} instrumented sites",
        generated.loc, generated.n_functions, generated.n_error_sites
    );
    let program = generated.lower();
    let analyses = Analyses::build(&program);

    // Check just the buggy module's read cluster (the statfilecmd
    // analogue).
    let buggy = spec.buggy_modules[0];
    let read_fn = program.func_id(&format!("m{buggy}_read")).expect("read fn");
    let targets = program.cfa(read_fn).error_locs().to_vec();
    let checker = pathslicing::blastlite::Checker::new(&analyses, CheckerConfig::default());
    let report = checker.check(&targets);

    let CheckOutcome::Bug { path, slice } = &report.outcome else {
        return Err(format!("expected a bug, got {:?}", report.outcome).into());
    };
    println!(
        "\nBUG confirmed after {} refinement(s); abstract trace: {} ops, witness slice: {} ops",
        report.refinements,
        path.len(),
        slice.len()
    );
    println!("\nwitness (the Figure 4 story):");
    for &e in slice {
        let edge = program.edge(e);
        println!(
            "    {:<12} {}",
            program.cfa(e.func).name(),
            program.fmt_op(&edge.op)
        );
    }

    // The witness pins the failure: getrlimit != 0 → popen returns 0 →
    // handle NULL → state closed → instrumented fgets fires.
    let rendered: Vec<String> = slice
        .iter()
        .map(|&e| program.fmt_op(&program.edge(e).op))
        .collect();
    assert!(
        rendered
            .iter()
            .any(|s| s.contains("st") && s.contains("!= 1")),
        "witness contains the open-state check: {rendered:?}"
    );
    Ok(())
}
